"""Tests for repro._util helpers."""

import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import (
    StageTimes,
    Timer,
    as_rng,
    check_positive_int,
    check_probability,
    hash_pair_to_partition,
    hash_to_partition,
    human_bytes,
    splitmix64,
)


class TestSplitmix64:
    def test_scalar_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_scalar_returns_uint64(self):
        assert isinstance(splitmix64(7), np.uint64)

    def test_array_shape_preserved(self):
        x = np.arange(100, dtype=np.uint64)
        assert splitmix64(x).shape == (100,)

    def test_distinct_inputs_distinct_outputs(self):
        x = np.arange(10_000, dtype=np.uint64)
        assert np.unique(splitmix64(x)).size == 10_000

    def test_avalanche_changes_output(self):
        assert splitmix64(1) != splitmix64(2)

    def test_zero_input(self):
        # SplitMix64 of 0 is a well-defined non-zero constant
        assert splitmix64(0) != 0


class TestHashToPartition:
    def test_range(self):
        parts = hash_to_partition(np.arange(5000), 13)
        assert parts.min() >= 0 and parts.max() < 13

    def test_deterministic(self):
        a = hash_to_partition(np.arange(100), 7, seed=3)
        b = hash_to_partition(np.arange(100), 7, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_mapping(self):
        a = hash_to_partition(np.arange(1000), 7, seed=0)
        b = hash_to_partition(np.arange(1000), 7, seed=1)
        assert not np.array_equal(a, b)

    def test_roughly_uniform(self):
        parts = hash_to_partition(np.arange(64_000), 8)
        counts = np.bincount(parts, minlength=8)
        assert counts.min() > 0.8 * 8000 and counts.max() < 1.2 * 8000

    @given(st.integers(min_value=1, max_value=64))
    def test_any_k(self, k):
        parts = hash_to_partition(np.arange(100), k)
        assert parts.max() < k

    def test_pair_hash_depends_on_both_endpoints(self):
        src = np.zeros(1000, dtype=np.int64)
        dst = np.arange(1000, dtype=np.int64)
        parts = hash_pair_to_partition(src, dst, 16)
        assert np.unique(parts).size == 16

    def test_pair_hash_not_symmetric_requirement(self):
        # (u, v) and (v, u) may differ; just check determinism and range
        a = hash_pair_to_partition([3], [5], 8, seed=2)
        b = hash_pair_to_partition([3], [5], 8, seed=2)
        assert a == b and 0 <= int(a[0]) < 8


class TestTimers:
    def test_timer_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stage_times_accumulate(self):
        times = StageTimes()
        times.add("a", 1.0)
        times.add("a", 0.5)
        times.add("b", 2.0)
        assert times["a"] == pytest.approx(1.5)
        assert times.total == pytest.approx(3.5)
        assert "b" in times and "c" not in times


class TestValidators:
    def test_check_positive_int_accepts(self):
        assert check_positive_int(5, "x") == 5

    @pytest.mark.parametrize("bad", [0, -1, 2.5])
    def test_check_positive_int_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive_int(bad, "x")

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_as_rng_idempotent(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_as_rng_from_seed(self):
        assert as_rng(5).integers(100) == as_rng(5).integers(100)


class TestHumanBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0B"), (512, "512B"), (2048, "2.00KB"), (3 * 1024**2, "3.00MB")],
    )
    def test_formatting(self, value, expected):
        assert human_bytes(value) == expected

    def test_terabytes(self):
        assert human_bytes(2 * 1024**4) == "2.00TB"
