"""Tests for repro._util helpers."""

import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import (
    BitsetRows,
    StageTimes,
    Timer,
    as_rng,
    check_positive_int,
    check_probability,
    group_by_bounded,
    hash_pair_to_partition,
    hash_to_partition,
    human_bytes,
    occurrence_ranks,
    splitmix64,
)


class TestSplitmix64:
    def test_scalar_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_scalar_returns_uint64(self):
        assert isinstance(splitmix64(7), np.uint64)

    def test_array_shape_preserved(self):
        x = np.arange(100, dtype=np.uint64)
        assert splitmix64(x).shape == (100,)

    def test_distinct_inputs_distinct_outputs(self):
        x = np.arange(10_000, dtype=np.uint64)
        assert np.unique(splitmix64(x)).size == 10_000

    def test_avalanche_changes_output(self):
        assert splitmix64(1) != splitmix64(2)

    def test_zero_input(self):
        # SplitMix64 of 0 is a well-defined non-zero constant
        assert splitmix64(0) != 0


class TestHashToPartition:
    def test_range(self):
        parts = hash_to_partition(np.arange(5000), 13)
        assert parts.min() >= 0 and parts.max() < 13

    def test_deterministic(self):
        a = hash_to_partition(np.arange(100), 7, seed=3)
        b = hash_to_partition(np.arange(100), 7, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_mapping(self):
        a = hash_to_partition(np.arange(1000), 7, seed=0)
        b = hash_to_partition(np.arange(1000), 7, seed=1)
        assert not np.array_equal(a, b)

    def test_roughly_uniform(self):
        parts = hash_to_partition(np.arange(64_000), 8)
        counts = np.bincount(parts, minlength=8)
        assert counts.min() > 0.8 * 8000 and counts.max() < 1.2 * 8000

    @given(st.integers(min_value=1, max_value=64))
    def test_any_k(self, k):
        parts = hash_to_partition(np.arange(100), k)
        assert parts.max() < k

    def test_pair_hash_depends_on_both_endpoints(self):
        src = np.zeros(1000, dtype=np.int64)
        dst = np.arange(1000, dtype=np.int64)
        parts = hash_pair_to_partition(src, dst, 16)
        assert np.unique(parts).size == 16

    def test_pair_hash_not_symmetric_requirement(self):
        # (u, v) and (v, u) may differ; just check determinism and range
        a = hash_pair_to_partition([3], [5], 8, seed=2)
        b = hash_pair_to_partition([3], [5], 8, seed=2)
        assert a == b and 0 <= int(a[0]) < 8


class TestTimers:
    def test_timer_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stage_times_accumulate(self):
        times = StageTimes()
        times.add("a", 1.0)
        times.add("a", 0.5)
        times.add("b", 2.0)
        assert times["a"] == pytest.approx(1.5)
        assert times.total == pytest.approx(3.5)
        assert "b" in times and "c" not in times

    def test_walls_do_not_inflate_total(self):
        times = StageTimes()
        times.add("total", 4.0)
        times.add_wall("max_node", 1.5)
        assert times.total == pytest.approx(4.0)
        assert times.walls["max_node"] == pytest.approx(1.5)
        assert times.critical_path == pytest.approx(1.5)

    def test_walls_keep_maximum(self):
        times = StageTimes()
        times.add_wall("max_node", 1.0)
        times.add_wall("max_node", 0.25)
        times.add_wall("max_node", 2.0)
        assert times.walls["max_node"] == pytest.approx(2.0)

    def test_critical_path_defaults_to_total(self):
        times = StageTimes()
        times.add("a", 1.0)
        times.add("b", 2.0)
        assert times.critical_path == pytest.approx(3.0)

    def test_overlaps_accumulate_without_touching_total(self):
        times = StageTimes()
        times.add("work", 2.0)
        times.add_overlap("pipeline_overlap", 0.5)
        times.add_overlap("pipeline_overlap", 0.25)
        times.add_overlap("node0_busy", 1.0)
        assert times.overlaps["pipeline_overlap"] == pytest.approx(0.75)
        assert times.overlaps["node0_busy"] == pytest.approx(1.0)
        assert times.total == pytest.approx(2.0)
        assert times.critical_path == pytest.approx(2.0)


def _ranks_reference(edges):
    """Brute-force occurrence ranks: sequential two-increment consumer."""
    seen: dict[int, int] = {}
    rank_u, rank_v = [], []
    for u, v in edges:
        seen[u] = seen.get(u, 0) + 1
        seen[v] = seen.get(v, 0) + 1
        rank_u.append(seen[u])
        rank_v.append(seen[v])
    return np.asarray(rank_u), np.asarray(rank_v)


class TestOccurrenceRanks:
    def test_matches_sequential_reference(self):
        rng = np.random.default_rng(3)
        edges = rng.integers(0, 12, size=(200, 2))
        rank_u, rank_v = occurrence_ranks(edges, 12)
        ref_u, ref_v = _ranks_reference(edges.tolist())
        assert np.array_equal(rank_u, ref_u)
        assert np.array_equal(rank_v, ref_v)

    def test_self_loops_read_after_both_increments(self):
        edges = np.array([[2, 2], [2, 3], [2, 2]])
        rank_u, rank_v = occurrence_ranks(edges, 4)
        # sequential consumer: after edge 0, seen[2] == 2 (both slots)
        assert rank_u.tolist() == [2, 3, 5]
        assert rank_v.tolist() == [2, 1, 5]

    def test_distinct_vertices_all_first(self):
        edges = np.array([[0, 1], [2, 3], [4, 5]])
        rank_u, rank_v = occurrence_ranks(edges, 6)
        assert rank_u.tolist() == [1, 1, 1]
        assert rank_v.tolist() == [1, 1, 1]

    def test_empty(self):
        rank_u, rank_v = occurrence_ranks(np.empty((0, 2), dtype=np.int64), 5)
        assert rank_u.size == 0 and rank_v.size == 0

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=80
        )
    )
    def test_property_matches_reference(self, edges):
        arr = np.asarray(edges, dtype=np.int64)
        rank_u, rank_v = occurrence_ranks(arr, 7)
        ref_u, ref_v = _ranks_reference(edges)
        assert np.array_equal(rank_u, ref_u)
        assert np.array_equal(rank_v, ref_v)


class TestBitsetRowsBulkOps:
    def test_masks_matches_per_row_mask(self):
        rows = BitsetRows(6, 10)
        pairs = [(0, 3), (0, 7), (2, 9), (5, 0), (5, 9)]
        for r, b in pairs:
            rows.add(r, b)
        idx = np.array([0, 2, 5, 1, 0])
        bulk = rows.masks(idx)
        assert bulk.shape == (5, 10)
        for row_out, r in zip(bulk, idx):
            assert np.array_equal(row_out, rows.mask(rows.rows[r]))

    def test_masks_empty_rows_and_empty_index(self):
        rows = BitsetRows(4, 8)
        assert not rows.masks(np.array([1, 3])).any()
        assert rows.masks(np.array([], dtype=np.int64)).shape == (0, 8)

    def test_add_many_matches_per_row_adds(self):
        a = BitsetRows(8, 12)
        b = BitsetRows(8, 12)
        rng = np.random.default_rng(0)
        rows_idx = rng.integers(0, 8, size=50)
        bits = rng.integers(0, 12, size=50)
        a.add_many(rows_idx, bits)
        for r, bit in zip(rows_idx.tolist(), bits.tolist()):
            b.add(r, bit)
        assert np.array_equal(a.rows, b.rows)

    def test_add_many_duplicate_pairs(self):
        rows = BitsetRows(3, 5)
        rows.add_many(np.array([1, 1, 1]), np.array([2, 2, 4]))
        assert rows.mask(rows.rows[1]).tolist() == [False, False, True, False, True]
        assert rows.count() == 2

    def test_add_many_multiword(self):
        # bits beyond 64 land in later words and round-trip through masks
        a = BitsetRows(4, 130)
        b = BitsetRows(4, 130)
        rows_idx = np.array([0, 0, 1, 3, 3, 3])
        bits = np.array([0, 64, 129, 63, 64, 128])
        a.add_many(rows_idx, bits)
        for r, bit in zip(rows_idx.tolist(), bits.tolist()):
            b.add(r, bit)
        assert np.array_equal(a.rows, b.rows)
        got = a.masks(np.arange(4))
        assert got[0, 0] and got[0, 64] and got[1, 129] and got[3, 128]
        assert got.sum() == 6

    def test_add_many_shape_mismatch(self):
        rows = BitsetRows(2, 4)
        with pytest.raises(ValueError, match="same shape"):
            rows.add_many(np.array([0, 1]), np.array([1]))

    def test_add_many_empty_noop(self):
        rows = BitsetRows(2, 4)
        rows.add_many(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert rows.count() == 0

    @pytest.mark.parametrize("bad_bit", [-1, 4, 64])
    def test_add_many_rejects_out_of_range_bits(self, bad_bit):
        # the single-word layout must fail as loudly as add() instead of
        # wrapping bit >= 64 into word 0
        rows = BitsetRows(2, 4)
        with pytest.raises(IndexError, match="out of range"):
            rows.add_many(np.array([0, 1]), np.array([1, bad_bit]))
        assert rows.count() == 0


class TestGroupByBounded:
    def test_groups_are_stable_slices(self):
        keys = np.array([2, 0, 2, 1, 0, 2], dtype=np.int64)
        order, indptr = group_by_bounded(keys, 4)
        assert indptr.tolist() == [0, 2, 3, 6, 6]
        assert order[indptr[0]:indptr[1]].tolist() == [1, 4]  # key 0, stream order
        assert order[indptr[2]:indptr[3]].tolist() == [0, 2, 5]
        assert keys[order].tolist() == sorted(keys.tolist())

    def test_empty(self):
        order, indptr = group_by_bounded(np.empty(0, dtype=np.int64), 3)
        assert order.size == 0
        assert indptr.tolist() == [0, 0, 0, 0]

    @given(st.lists(st.integers(0, 6), max_size=80))
    def test_matches_stable_argsort(self, values):
        keys = np.array(values, dtype=np.int64)
        order, indptr = group_by_bounded(keys, 7)
        assert np.array_equal(order, np.argsort(keys, kind="stable"))
        assert np.array_equal(
            np.diff(indptr), np.bincount(keys, minlength=7)
        )


class TestValidators:
    def test_check_positive_int_accepts(self):
        assert check_positive_int(5, "x") == 5

    @pytest.mark.parametrize("bad", [0, -1, 2.5])
    def test_check_positive_int_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive_int(bad, "x")

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_as_rng_idempotent(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_as_rng_from_seed(self):
        assert as_rng(5).integers(100) == as_rng(5).integers(100)


class TestHumanBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0B"), (512, "512B"), (2048, "2.00KB"), (3 * 1024**2, "3.00MB")],
    )
    def test_formatting(self, value, expected):
        assert human_bytes(value) == expected

    def test_terabytes(self):
        assert human_bytes(2 * 1024**4) == "2.00TB"
