"""Tests for the DiGraph core."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph


def small_graph():
    return DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2), (3, 3)])


class TestConstruction:
    def test_from_edges(self):
        g = small_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 5

    def test_empty(self):
        g = DiGraph.empty(5)
        assert g.num_vertices == 5 and g.num_edges == 0

    def test_from_edges_empty_list(self):
        g = DiGraph.from_edges([])
        assert g.num_vertices == 0 and g.num_edges == 0

    def test_isolated_vertices_via_num_vertices(self):
        g = DiGraph([0], [1], num_vertices=10)
        assert g.num_vertices == 10

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError, match="equal length"):
            DiGraph([0, 1], [1])

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            DiGraph([-1], [0])

    def test_rejects_too_small_num_vertices(self):
        with pytest.raises(ValueError, match="num_vertices"):
            DiGraph([0], [5], num_vertices=3)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-D"):
            DiGraph([[0, 1]], [[1, 2]])

    def test_edges_roundtrip(self):
        g = small_graph()
        assert np.array_equal(g.edges()[:, 0], g.src)
        assert np.array_equal(g.edges()[:, 1], g.dst)


class TestDegrees:
    def test_out_degrees(self):
        g = small_graph()
        assert g.out_degrees().tolist() == [2, 1, 1, 1]

    def test_in_degrees(self):
        g = small_graph()
        assert g.in_degrees().tolist() == [1, 1, 2, 1]

    def test_total_degrees_self_loop_counts_twice(self):
        g = small_graph()
        assert g.degrees()[3] == 2

    def test_degree_sum_is_twice_edges(self):
        g = small_graph()
        assert g.degrees().sum() == 2 * g.num_edges


class TestAdjacency:
    def test_out_neighbors(self):
        g = small_graph()
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]

    def test_in_neighbors(self):
        g = small_graph()
        assert sorted(g.in_neighbors(2).tolist()) == [0, 1]

    def test_neighbors_union(self):
        g = small_graph()
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_csr_edge_ids_consistent(self):
        g = small_graph()
        indptr, nbrs, eids = g.csr_out()
        for v in range(g.num_vertices):
            for idx in range(indptr[v], indptr[v + 1]):
                assert g.src[eids[idx]] == v
                assert g.dst[eids[idx]] == nbrs[idx]


class TestTransforms:
    def test_simplify_removes_parallel_and_loops(self):
        g = DiGraph.from_edges([(0, 1), (0, 1), (1, 2), (3, 3)])
        simple = g.simplify()
        assert simple.num_edges == 2  # parallel (0,1) deduped, loop dropped
        edges = {tuple(e) for e in simple.edges().tolist()}
        assert (3, 3) not in edges and (0, 1) in edges

    def test_simplify_keeps_loops_when_asked(self):
        g = small_graph()
        simple = g.simplify(drop_self_loops=False)
        assert (3, 3) in {tuple(e) for e in simple.edges().tolist()}

    def test_reverse(self):
        g = small_graph()
        rev = g.reverse()
        assert np.array_equal(rev.src, g.dst)
        assert np.array_equal(rev.dst, g.src)

    def test_relabel_permutation(self):
        g = small_graph()
        mapping = np.array([3, 2, 1, 0])
        rel = g.relabel(mapping)
        assert rel.num_edges == g.num_edges
        assert np.array_equal(np.sort(rel.degrees()), np.sort(g.degrees()))

    def test_relabel_rejects_non_permutation(self):
        g = small_graph()
        with pytest.raises(ValueError, match="permutation"):
            g.relabel(np.zeros(4, dtype=np.int64))

    def test_relabel_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            small_graph().relabel(np.arange(3))

    def test_subgraph_edges(self):
        g = small_graph()
        sub = g.subgraph_edges(np.array([True, False, True, False, False]))
        assert sub.num_edges == 2
        assert sub.num_vertices == g.num_vertices

    def test_subgraph_edges_rejects_bad_mask(self):
        with pytest.raises(ValueError):
            small_graph().subgraph_edges(np.array([True]))

    def test_compact_drops_isolated(self):
        g = DiGraph([0, 5], [5, 0], num_vertices=10)
        compacted, old_ids = g.compact()
        assert compacted.num_vertices == 2
        assert old_ids.tolist() == [0, 5]

    def test_shuffled_copy_same_multiset(self):
        g = small_graph()
        shuffled = g.shuffled_copy(seed=3)
        orig = sorted(map(tuple, g.edges().tolist()))
        new = sorted(map(tuple, shuffled.edges().tolist()))
        assert orig == new


class TestTraversal:
    def test_bfs_order_visits_all(self):
        g = small_graph()
        order = g.bfs_order()
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_bfs_order_starts_at_source(self):
        g = small_graph()
        assert g.bfs_order(source=2)[0] == 2

    def test_bfs_order_empty_graph(self):
        assert DiGraph.empty(0).bfs_order().size == 0

    def test_bfs_covers_disconnected(self):
        g = DiGraph([0, 3], [1, 4], num_vertices=6)
        assert sorted(g.bfs_order().tolist()) == list(range(6))

    def test_wcc_labels(self):
        g = DiGraph([0, 2, 4], [1, 3, 5], num_vertices=7)
        labels = g.weakly_connected_components()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[6] == 6  # isolated vertex is its own component

    def test_wcc_direction_ignored(self):
        g = DiGraph([1], [0], num_vertices=2)
        labels = g.weakly_connected_components()
        assert labels[0] == labels[1]


class TestEquality:
    def test_equal_graphs(self):
        assert small_graph() == small_graph()

    def test_unequal_num_vertices(self):
        assert DiGraph([0], [1]) != DiGraph([0], [1], num_vertices=5)

    def test_not_equal_to_other_types(self):
        assert small_graph().__eq__(42) is NotImplemented


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=1, max_size=100
    )
)
def test_property_degree_sum_invariant(edges):
    g = DiGraph.from_edges(edges)
    assert g.out_degrees().sum() == g.num_edges
    assert g.in_degrees().sum() == g.num_edges
    assert g.degrees().sum() == 2 * g.num_edges


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=60
    ),
    seed=st.integers(0, 1000),
)
def test_property_relabel_preserves_structure(edges, seed):
    g = DiGraph.from_edges(edges)
    rng = np.random.default_rng(seed)
    mapping = rng.permutation(g.num_vertices)
    rel = g.relabel(mapping)
    # degree multiset is invariant under relabeling
    assert sorted(rel.degrees().tolist()) == sorted(g.degrees().tolist())
