"""Cross-module consistency properties: the same quantity computed by two
independent code paths must agree exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import mirror_count
from repro.analysis.partition_stats import communication_matrix
from repro.graph.digraph import DiGraph
from repro.graph.stream import EdgeStream
from repro.partitioners.base import PartitionAssignment
from repro.system.engine import GasEngine
from repro.system.network import NetworkModel
from repro.system.placement import build_placement
from repro.system.apps.pagerank import pagerank


def random_assignment(edges, k, seed):
    g = DiGraph.from_edges(edges)
    stream = EdgeStream.from_graph(g)
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, k, size=stream.num_edges, dtype=np.int64)
    return PartitionAssignment(stream, parts, num_partitions=k)


edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=60
)


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists, k=st.integers(1, 8), seed=st.integers(0, 100))
def test_placement_rf_matches_assignment_rf(edges, k, seed):
    a = random_assignment(edges, k, seed)
    placement = build_placement(a)
    assert placement.replication_factor() == pytest.approx(a.replication_factor())


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists, k=st.integers(1, 8), seed=st.integers(0, 100))
def test_mirror_count_three_ways(edges, k, seed):
    a = random_assignment(edges, k, seed)
    placement = build_placement(a)
    # metrics path, placement path, and communication-matrix path agree
    assert mirror_count(a) == placement.total_mirrors
    assert communication_matrix(a).sum() == placement.total_mirrors


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists, k=st.integers(1, 8), seed=st.integers(0, 100))
def test_masters_equal_active_vertices(edges, k, seed):
    a = random_assignment(edges, k, seed)
    placement = build_placement(a)
    assert placement.total_masters == a.stream.active_vertices().size


@settings(max_examples=10, deadline=None)
@given(edges=edge_lists, k=st.integers(1, 4), seed=st.integers(0, 50))
def test_engine_message_accounting(edges, k, seed):
    # in the first superstep every active vertex syncs: messages must be
    # exactly 2 * total mirrors
    a = random_assignment(edges, k, seed)
    engine = GasEngine(a, network=NetworkModel(rtt_seconds=0.0))
    _, cost = pagerank(engine, max_supersteps=1)
    placement = build_placement(a)
    assert cost.supersteps[0].messages == 2 * placement.total_mirrors


@settings(max_examples=15, deadline=None)
@given(edges=edge_lists, k=st.integers(1, 6), seed=st.integers(0, 50))
def test_vertex_partition_counts_vs_vertex_sets(edges, k, seed):
    a = random_assignment(edges, k, seed)
    counts = a.vertex_partition_counts()
    recomputed = np.zeros(a.stream.num_vertices, dtype=np.int64)
    for p, verts in enumerate(a.vertex_sets()):
        recomputed[verts] += 1
    assert np.array_equal(counts, recomputed)


@settings(max_examples=15, deadline=None)
@given(edges=edge_lists, k=st.integers(1, 6), seed=st.integers(0, 50))
def test_partition_sizes_vs_manual_count(edges, k, seed):
    a = random_assignment(edges, k, seed)
    manual = np.zeros(k, dtype=np.int64)
    for p in a.edge_partition.tolist():
        manual[p] += 1
    assert np.array_equal(a.partition_sizes(), manual)
