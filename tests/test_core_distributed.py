"""Tests for the Section III-C distributed CLUGP deployment."""

import numpy as np
import pytest

from repro.config import ClugpConfig
from repro.core.distributed import (
    DistributedClugpPartitioner,
    balance_quotas,
    _shard_ranges,
    distributed_clugp,
)
from repro.core.partitioner import ClugpPartitioner
from repro.graph.stream import EdgeStream
from repro.partitioners import HashingPartitioner


@pytest.fixture(scope="module")
def stream(crawl_graph):
    return EdgeStream.from_graph(crawl_graph, order="natural")


class TestShardRanges:
    def test_cover_and_disjoint(self):
        ranges = _shard_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_single_node(self):
        assert _shard_ranges(5, 1) == [(0, 5)]

    def test_equal_split(self):
        ranges = _shard_ranges(8, 4)
        assert all(stop - start == 2 for start, stop in ranges)


class TestDistributedClugp:
    def test_valid_global_assignment(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=4)
        a = result.assignment
        assert a.edge_partition.shape == (stream.num_edges,)
        assert a.edge_partition.min() >= 0 and a.edge_partition.max() < 8
        assert a.partition_sizes().sum() == stream.num_edges

    def test_one_node_equals_single_machine(self, stream):
        single = ClugpPartitioner(8, seed=3).partition(stream)
        dist = distributed_clugp(stream, 8, num_nodes=1, seed=3)
        assert np.array_equal(single.edge_partition, dist.assignment.edge_partition)

    def test_node_reports(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=4)
        assert len(result.nodes) == 4
        assert sum(n.num_edges for n in result.nodes) == stream.num_edges
        assert all(n.num_clusters > 0 for n in result.nodes)
        assert result.max_node_seconds() > 0.0

    def test_parallel_matches_sequential(self, stream):
        par = distributed_clugp(stream, 8, num_nodes=4, seed=1, parallel_nodes=True)
        seq = distributed_clugp(stream, 8, num_nodes=4, seed=1, parallel_nodes=False)
        assert np.array_equal(
            par.assignment.edge_partition, seq.assignment.edge_partition
        )

    def test_stage_accounting_records_critical_path(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=4, parallel_nodes=False)
        times = result.assignment.stage_times
        max_node = max(n.seconds for n in result.nodes)
        # summed node work stays the additive "total" stage
        assert times["total"] == pytest.approx(sum(n.seconds for n in result.nodes))
        # the deployment wall-clock is the slowest node, recorded as a
        # non-additive wall so it does not inflate total_time()
        assert times.walls["max_node"] == pytest.approx(max_node)
        assert result.assignment.wall_time() == pytest.approx(max_node)
        assert result.assignment.total_time() == pytest.approx(times["total"])
        assert 0.0 < times.walls["max_node"] < times["total"]

    def test_single_node_wall_equals_total(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=1, parallel_nodes=False)
        times = result.assignment.stage_times
        assert times.walls["max_node"] == pytest.approx(times["total"])
        assert result.assignment.wall_time() == pytest.approx(times.total)

    def test_quality_stays_competitive(self, stream):
        # independent shards pay a quality price but must stay well below
        # hashing (the sanity floor for any clustering-based approach)
        dist = distributed_clugp(stream, 16, num_nodes=4)
        rf_hash = HashingPartitioner(16).partition(stream).replication_factor()
        assert dist.assignment.replication_factor() < rf_hash

    def test_balance_roughly_held(self, stream):
        # each node enforces tau on its shard; the merged result can exceed
        # tau only by the shard-boundary rounding
        result = distributed_clugp(
            stream, 8, num_nodes=4, config=ClugpConfig(imbalance_factor=1.05)
        )
        assert result.assignment.relative_balance() <= 1.15

    def test_rejects_too_many_nodes(self):
        tiny = EdgeStream([0], [1], num_vertices=2)
        with pytest.raises(ValueError, match="num_nodes"):
            distributed_clugp(tiny, 2, num_nodes=5)


class TestMergedMode:
    def test_single_node_bit_identical_to_single_machine(self, stream):
        # the merged protocol with one node degenerates exactly: identity
        # relabel, no boundary vertices, a warm-started refinement game
        # that proposes zero moves, and a quota equal to the uniform cap
        single = ClugpPartitioner(8, seed=3).partition(stream)
        merged = distributed_clugp(stream, 8, num_nodes=1, seed=3, merge_mode="merged")
        assert np.array_equal(
            single.edge_partition, merged.assignment.edge_partition
        )
        assert merged.merge.game_moves == 0
        assert merged.merge.num_boundary_vertices == 0
        assert merged.merge.num_unresolved_edges == 0

    def test_single_node_identity_other_seeds_and_k(self, stream):
        for seed, k in ((0, 4), (7, 16)):
            single = ClugpPartitioner(k, seed=seed).partition(stream)
            merged = distributed_clugp(
                stream, k, num_nodes=1, seed=seed, merge_mode="merged"
            )
            assert np.array_equal(
                single.edge_partition, merged.assignment.edge_partition
            )

    def test_valid_global_assignment(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=4, merge_mode="merged")
        a = result.assignment
        assert a.edge_partition.shape == (stream.num_edges,)
        assert a.edge_partition.min() >= 0 and a.edge_partition.max() < 8
        assert a.partition_sizes().sum() == stream.num_edges

    def test_beats_independent_on_bench_fixture(self, stream):
        for num_nodes in (2, 4, 8):
            ind = distributed_clugp(
                stream, 8, num_nodes=num_nodes, merge_mode="independent"
            )
            mer = distributed_clugp(
                stream, 8, num_nodes=num_nodes, merge_mode="merged"
            )
            assert (
                mer.assignment.replication_factor()
                <= ind.assignment.replication_factor()
            )

    def test_balance_strictly_conforms(self, stream):
        # the quota exchange caps every partition at the *global* L_max,
        # so merged mode holds tau exactly (plus ceil rounding), unlike
        # independent mode's per-shard rounding slack
        result = distributed_clugp(
            stream, 8, num_nodes=4, merge_mode="merged",
            config=ClugpConfig(imbalance_factor=1.05),
        )
        cap = int(np.ceil(1.05 * stream.num_edges / 8))
        assert int(result.assignment.partition_sizes().max()) <= cap

    def test_parallel_matches_sequential(self, stream):
        par = distributed_clugp(
            stream, 8, num_nodes=4, seed=1, merge_mode="merged", parallel_nodes=True
        )
        seq = distributed_clugp(
            stream, 8, num_nodes=4, seed=1, merge_mode="merged", parallel_nodes=False
        )
        assert np.array_equal(
            par.assignment.edge_partition, seq.assignment.edge_partition
        )

    def test_process_backend_matches_thread(self, stream):
        thread = distributed_clugp(
            stream, 8, num_nodes=3, seed=2, merge_mode="merged", backend="thread"
        )
        process = distributed_clugp(
            stream, 8, num_nodes=3, seed=2, merge_mode="merged", backend="process"
        )
        assert np.array_equal(
            thread.assignment.edge_partition, process.assignment.edge_partition
        )

    def test_process_backend_independent_mode(self, stream):
        thread = distributed_clugp(
            stream, 8, num_nodes=3, seed=2, merge_mode="independent", backend="thread"
        )
        process = distributed_clugp(
            stream, 8, num_nodes=3, seed=2, merge_mode="independent", backend="process"
        )
        assert np.array_equal(
            thread.assignment.edge_partition, process.assignment.edge_partition
        )

    def test_stage_walls_and_critical_path(self, stream):
        result = distributed_clugp(
            stream, 8, num_nodes=4, merge_mode="merged", parallel_nodes=False
        )
        times = result.assignment.stage_times
        for stage in ("shard", "merge", "game", "transform"):
            assert stage in times
        assert times.total == pytest.approx(
            times["shard"] + times["merge"] + times["game"] + times["transform"]
        )
        expected_wall = (
            times.walls["shard"]
            + times["merge"]
            + times["game"]
            + times.walls["transform"]
        )
        assert times.walls["critical_path"] == pytest.approx(expected_wall)
        assert result.assignment.wall_time() == pytest.approx(expected_wall)
        # walls are maxima over concurrent nodes: never above summed work
        assert times.walls["shard"] <= times["shard"] + 1e-9
        assert times.walls["transform"] <= times["transform"] + 1e-9

    def test_merge_report_wire_bytes(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=4, merge_mode="merged")
        m = result.merge
        assert m is not None
        assert m.merge_bytes == sum(n.summary_bytes for n in result.nodes)
        assert m.merge_bytes > 0
        assert m.broadcast_bytes > 0
        assert m.quota_bytes == 2 * 4 * 8 * 8  # 2 exchanges * nodes * k * int64
        assert m.num_boundary_vertices > 0
        assert m.num_global_clusters == sum(n.num_clusters for n in result.nodes)

    def test_to_dict_shape(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=2, merge_mode="merged")
        d = result.to_dict()
        assert d["merge_mode"] == "merged"
        assert d["num_nodes"] == 2
        assert d["replication_factor"] == pytest.approx(
            result.assignment.replication_factor()
        )
        assert set(d["stage_seconds"]) == {"shard", "merge", "game", "transform"}
        assert d["merge"]["num_global_clusters"] > 0
        assert len(d["nodes"]) == 2
        import json

        json.dumps(d)  # must be JSON-serializable as-is

    def test_summary_mentions_protocol(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=2, merge_mode="merged")
        text = result.summary()
        assert "merged" in text and "boundary" in text and "RF=" in text

    def test_independent_to_dict(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=2, merge_mode="independent")
        d = result.to_dict()
        assert d["merge"] is None
        assert d["merge_mode"] == "independent"

    def test_rejects_unknown_mode_and_backend(self, stream):
        with pytest.raises(ValueError, match="merge_mode"):
            distributed_clugp(stream, 8, num_nodes=2, merge_mode="bogus")
        with pytest.raises(ValueError, match="backend"):
            distributed_clugp(stream, 8, num_nodes=2, backend="mpi")


class TestBalanceQuotas:
    def test_columns_sum_to_cap(self):
        loads = np.array([[10, 0, 5], [0, 12, 5]], dtype=np.int64)
        cap = 9
        quotas = balance_quotas(loads, cap)
        assert (quotas.sum(axis=0) == cap).all()

    def test_rows_cover_each_shard(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n, k = int(rng.integers(1, 6)), int(rng.integers(1, 9))
            loads = rng.integers(0, 50, size=(n, k)).astype(np.int64)
            total = int(loads.sum())
            cap = max(1, int(np.ceil(1.05 * total / k)))
            quotas = balance_quotas(loads, cap)
            assert (quotas.sum(axis=0) <= cap).all()
            assert (quotas.sum(axis=1) >= loads.sum(axis=1)).all()
            assert (quotas >= 0).all()

    def test_single_node_gets_uniform_cap(self):
        loads = np.array([[30, 1, 2]], dtype=np.int64)
        quotas = balance_quotas(loads, 12)
        assert (quotas[0] == 12).all()

    def test_no_overfull_keeps_demands(self):
        loads = np.array([[3, 4], [2, 1]], dtype=np.int64)
        quotas = balance_quotas(loads, 10)
        assert (quotas >= loads).all()
        assert (quotas.sum(axis=0) == 10).all()


class TestPartitionerInterface:
    def test_registry_name(self):
        from repro.partitioners.registry import make_partitioner

        p = make_partitioner("clugp-dist", 8, num_nodes=2)
        assert isinstance(p, DistributedClugpPartitioner)

    def test_partition_and_diagnostics(self, stream):
        p = DistributedClugpPartitioner(8, num_nodes=4)
        assignment = p.partition(stream)
        assert assignment.num_partitions == 8
        assert p.last_result is not None
        assert len(p.last_result.nodes) == 4

    def test_deterministic(self, stream):
        a = DistributedClugpPartitioner(8, seed=2, num_nodes=3).partition(stream)
        b = DistributedClugpPartitioner(8, seed=2, num_nodes=3).partition(stream)
        assert np.array_equal(a.edge_partition, b.edge_partition)
