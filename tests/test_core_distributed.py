"""Tests for the Section III-C distributed CLUGP deployment."""

import numpy as np
import pytest

from repro.config import ClugpConfig
from repro.core.distributed import (
    DistributedClugpPartitioner,
    _shard_ranges,
    distributed_clugp,
)
from repro.core.partitioner import ClugpPartitioner
from repro.graph.stream import EdgeStream
from repro.partitioners import HashingPartitioner


@pytest.fixture(scope="module")
def stream(crawl_graph):
    return EdgeStream.from_graph(crawl_graph, order="natural")


class TestShardRanges:
    def test_cover_and_disjoint(self):
        ranges = _shard_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_single_node(self):
        assert _shard_ranges(5, 1) == [(0, 5)]

    def test_equal_split(self):
        ranges = _shard_ranges(8, 4)
        assert all(stop - start == 2 for start, stop in ranges)


class TestDistributedClugp:
    def test_valid_global_assignment(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=4)
        a = result.assignment
        assert a.edge_partition.shape == (stream.num_edges,)
        assert a.edge_partition.min() >= 0 and a.edge_partition.max() < 8
        assert a.partition_sizes().sum() == stream.num_edges

    def test_one_node_equals_single_machine(self, stream):
        single = ClugpPartitioner(8, seed=3).partition(stream)
        dist = distributed_clugp(stream, 8, num_nodes=1, seed=3)
        assert np.array_equal(single.edge_partition, dist.assignment.edge_partition)

    def test_node_reports(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=4)
        assert len(result.nodes) == 4
        assert sum(n.num_edges for n in result.nodes) == stream.num_edges
        assert all(n.num_clusters > 0 for n in result.nodes)
        assert result.max_node_seconds() > 0.0

    def test_parallel_matches_sequential(self, stream):
        par = distributed_clugp(stream, 8, num_nodes=4, seed=1, parallel_nodes=True)
        seq = distributed_clugp(stream, 8, num_nodes=4, seed=1, parallel_nodes=False)
        assert np.array_equal(
            par.assignment.edge_partition, seq.assignment.edge_partition
        )

    def test_stage_accounting_records_critical_path(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=4, parallel_nodes=False)
        times = result.assignment.stage_times
        max_node = max(n.seconds for n in result.nodes)
        # summed node work stays the additive "total" stage
        assert times["total"] == pytest.approx(sum(n.seconds for n in result.nodes))
        # the deployment wall-clock is the slowest node, recorded as a
        # non-additive wall so it does not inflate total_time()
        assert times.walls["max_node"] == pytest.approx(max_node)
        assert result.assignment.wall_time() == pytest.approx(max_node)
        assert result.assignment.total_time() == pytest.approx(times["total"])
        assert 0.0 < times.walls["max_node"] < times["total"]

    def test_single_node_wall_equals_total(self, stream):
        result = distributed_clugp(stream, 8, num_nodes=1, parallel_nodes=False)
        times = result.assignment.stage_times
        assert times.walls["max_node"] == pytest.approx(times["total"])
        assert result.assignment.wall_time() == pytest.approx(times.total)

    def test_quality_stays_competitive(self, stream):
        # independent shards pay a quality price but must stay well below
        # hashing (the sanity floor for any clustering-based approach)
        dist = distributed_clugp(stream, 16, num_nodes=4)
        rf_hash = HashingPartitioner(16).partition(stream).replication_factor()
        assert dist.assignment.replication_factor() < rf_hash

    def test_balance_roughly_held(self, stream):
        # each node enforces tau on its shard; the merged result can exceed
        # tau only by the shard-boundary rounding
        result = distributed_clugp(
            stream, 8, num_nodes=4, config=ClugpConfig(imbalance_factor=1.05)
        )
        assert result.assignment.relative_balance() <= 1.15

    def test_rejects_too_many_nodes(self):
        tiny = EdgeStream([0], [1], num_vertices=2)
        with pytest.raises(ValueError, match="num_nodes"):
            distributed_clugp(tiny, 2, num_nodes=5)


class TestPartitionerInterface:
    def test_registry_name(self):
        from repro.partitioners.registry import make_partitioner

        p = make_partitioner("clugp-dist", 8, num_nodes=2)
        assert isinstance(p, DistributedClugpPartitioner)

    def test_partition_and_diagnostics(self, stream):
        p = DistributedClugpPartitioner(8, num_nodes=4)
        assignment = p.partition(stream)
        assert assignment.num_partitions == 8
        assert p.last_result is not None
        assert len(p.last_result.nodes) == 4

    def test_deterministic(self, stream):
        a = DistributedClugpPartitioner(8, seed=2, num_nodes=3).partition(stream)
        b = DistributedClugpPartitioner(8, seed=2, num_nodes=3).partition(stream)
        assert np.array_equal(a.edge_partition, b.edge_partition)
