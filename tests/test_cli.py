"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import io
from repro.graph.generators import web_crawl_graph


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition"])
        args_dict = vars(args)
        assert args_dict["algorithm"] == "clugp"
        assert args_dict["partitions"] == 32

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--algorithm", "bogus"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for alias in ("uk", "arabic", "webbase", "it", "twitter"):
            assert alias in out

    def test_partition(self, capsys):
        rc = main(
            ["partition", "--scale", "0.02", "-k", "4", "--algorithm", "hashing"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replication_factor=" in out

    def test_partition_clugp_preferred_order(self, capsys):
        rc = main(["partition", "--scale", "0.02", "-k", "4", "--algorithm", "clugp"])
        assert rc == 0
        assert "algorithm=clugp" in capsys.readouterr().out

    def test_partition_writes_output(self, tmp_path, capsys):
        out_file = tmp_path / "parts.txt"
        rc = main(
            [
                "partition",
                "--scale",
                "0.02",
                "-k",
                "4",
                "--algorithm",
                "dbh",
                "--output",
                str(out_file),
            ]
        )
        assert rc == 0
        parts = np.loadtxt(out_file, dtype=int)
        assert parts.max() < 4

    def test_partition_from_edgelist(self, tmp_path, capsys):
        g = web_crawl_graph(200, avg_out_degree=5, seed=1)
        path = tmp_path / "g.edges"
        io.write_edgelist(g, path)
        rc = main(
            ["partition", "--edgelist", str(path), "-k", "2", "--algorithm", "hashing"]
        )
        assert rc == 0
        assert f"|E|={g.num_edges}" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--scale", "0.02", "-k", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("hashing", "dbh", "greedy", "hdrf", "mint", "clugp"):
            assert name in out

    def test_sweep(self, capsys):
        rc = main(
            [
                "sweep",
                "--scale",
                "0.02",
                "--k-values",
                "2,4",
                "--algorithms",
                "hashing,clugp",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "RF" in out and "clugp" in out

    def test_sweep_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithms"):
            main(["sweep", "--scale", "0.02", "--algorithms", "bogus"])

    def test_pagerank(self, capsys):
        rc = main(
            ["pagerank", "--scale", "0.02", "-k", "4", "--rtt-ms", "20", "--supersteps", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "supersteps=5" in out
        assert "mode=local" in out
        assert "simulated" in out

    def test_pagerank_global_mode(self, capsys):
        rc = main(
            ["pagerank", "--scale", "0.02", "-k", "4", "--supersteps", "3", "--mode", "global"]
        )
        assert rc == 0
        assert "mode=global" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "app", ["pagerank", "sssp", "connected_components", "label_propagation"]
    )
    def test_run_app(self, capsys, app):
        rc = main(
            ["run-app", app, "--partitioner", "clugp", "-k", "8", "--scale", "0.02",
             "--supersteps", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"app={app}" in out
        assert "mode=local" in out
        assert "messages=" in out

    def test_run_app_sssp_explicit_source(self, capsys):
        rc = main(
            ["run-app", "sssp", "--partitioner", "hashing", "-k", "2",
             "--scale", "0.02", "--source", "0"]
        )
        assert rc == 0
        assert "source=0" in capsys.readouterr().out

    def test_run_app_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["run-app", "bogus"])

    @pytest.mark.parametrize("mode", ["independent", "merged"])
    def test_distribute(self, capsys, mode):
        rc = main(
            ["distribute", "--scale", "0.03", "-k", "4", "--num-nodes", "3",
             "--merge-mode", mode]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"[{mode}/thread]" in out
        assert "RF=" in out
        assert "node 0:" in out and "node 2:" in out
        if mode == "merged":
            assert "boundary" in out and "wire=" in out

    def test_distribute_process_backend(self, capsys):
        rc = main(
            ["distribute", "--scale", "0.03", "-k", "4", "--num-nodes", "2",
             "--merge-mode", "merged", "--backend", "process"]
        )
        assert rc == 0
        assert "[merged/process]" in capsys.readouterr().out

    def test_distribute_compare_modes(self, capsys):
        rc = main(
            ["distribute", "--scale", "0.03", "-k", "4", "--num-nodes", "4",
             "--compare-modes"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "independent" in out and "merged" in out
        assert "sync wire" in out

    def test_distribute_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            main(["distribute", "--merge-mode", "bogus"])


class TestServe:
    def test_serve(self, capsys):
        assert main([
            "serve", "--dataset", "uk", "--scale", "0.05", "-k", "4",
            "--num-batches", "4", "--migration-cap", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "served" in out
        assert "replication_factor=" in out

    def test_serve_json_with_oracle(self, capsys):
        import json

        assert main([
            "serve", "--dataset", "uk", "--scale", "0.05", "-k", "4",
            "--num-batches", "3", "--oracle", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["batches"] >= 3
        assert "rf_drift" in payload["summary"]
        assert len(payload["batches"]) == payload["summary"]["batches"]
        assert all(s.get("applied_moves") is not None for s in payload["batches"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.num_batches == 50
        assert args.migration_cap is None


class TestChunkImplFlags:
    """--chunk-impl / --kernel-backend on partition, serve, distribute."""

    def test_defaults(self):
        for command in ("partition", "serve", "distribute"):
            args = build_parser().parse_args([command])
            assert args.chunk_impl == "fast"
            assert args.kernel_backend == "auto"

    def test_rejects_unknown_impl(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--chunk-impl", "bogus"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--kernel-backend", "bogus"])

    @pytest.mark.parametrize("algorithm", ["hdrf", "greedy", "clugp"])
    def test_partition_jit_matches_fast(self, capsys, algorithm):
        base_args = [
            "partition", "--scale", "0.03", "-k", "4",
            "--algorithm", algorithm, "--chunk-size", "512",
        ]
        assert main(base_args) == 0
        fast_out = capsys.readouterr().out
        assert main(base_args + ["--chunk-impl", "jit"]) == 0
        jit_out = capsys.readouterr().out
        # identical quality metrics (all but the timing): bit-identical path
        strip = lambda out: out.split(" time=")[0]
        assert strip(fast_out) == strip(jit_out)

    def test_partition_reference_impl(self, capsys):
        assert main([
            "partition", "--scale", "0.02", "-k", "4", "--algorithm", "hdrf",
            "--chunk-size", "256", "--chunk-impl", "reference",
        ]) == 0
        assert "replication_factor=" in capsys.readouterr().out

    def test_partition_unsupported_algorithm_friendly_error(self):
        with pytest.raises(SystemExit, match="not supported"):
            main([
                "partition", "--scale", "0.02", "--algorithm", "hashing",
                "--chunk-impl", "jit",
            ])

    def test_serve_accepts_jit(self, capsys):
        assert main([
            "serve", "--dataset", "uk", "--scale", "0.05", "-k", "4",
            "--num-batches", "3", "--chunk-impl", "jit",
        ]) == 0
        assert "served" in capsys.readouterr().out

    def test_distribute_accepts_jit(self, capsys):
        assert main([
            "distribute", "--scale", "0.03", "-k", "4", "--num-nodes", "2",
            "--merge-mode", "merged", "--chunk-impl", "jit",
        ]) == 0
        assert "RF=" in capsys.readouterr().out


class TestGameImplFlags:
    """--game-impl on partition, serve, distribute (PR 9)."""

    def test_defaults(self):
        for command in ("partition", "serve", "distribute"):
            args = build_parser().parse_args([command])
            assert args.game_impl == "fast"

    def test_rejects_unknown_impl(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--game-impl", "bogus"])

    @pytest.mark.parametrize("algorithm", ["clugp", "clugp-s", "clugp-g"])
    def test_partition_jit_matches_fast(self, capsys, algorithm):
        base_args = [
            "partition", "--scale", "0.03", "-k", "4",
            "--algorithm", algorithm,
        ]
        assert main(base_args) == 0
        fast_out = capsys.readouterr().out
        assert main(base_args + ["--game-impl", "jit"]) == 0
        jit_out = capsys.readouterr().out
        strip = lambda out: out.split(" time=")[0]
        assert strip(fast_out) == strip(jit_out)

    def test_partition_reference_impl(self, capsys):
        assert main([
            "partition", "--scale", "0.02", "-k", "4", "--algorithm", "clugp",
            "--game-impl", "reference",
        ]) == 0
        assert "replication_factor=" in capsys.readouterr().out

    def test_unsupported_algorithm_friendly_error(self):
        with pytest.raises(SystemExit, match="not supported"):
            main([
                "partition", "--scale", "0.02", "--algorithm", "hashing",
                "--game-impl", "jit",
            ])
        # chunk-capable but not clugp-family: still a friendly exit
        with pytest.raises(SystemExit, match="not supported"):
            main([
                "partition", "--scale", "0.02", "--algorithm", "hdrf",
                "--game-impl", "jit",
            ])

    def test_serve_accepts_game_jit(self, capsys):
        assert main([
            "serve", "--dataset", "uk", "--scale", "0.05", "-k", "4",
            "--num-batches", "3", "--game-impl", "jit",
        ]) == 0
        assert "served" in capsys.readouterr().out

    def test_distribute_accepts_game_jit(self, capsys):
        assert main([
            "distribute", "--scale", "0.03", "-k", "4", "--num-nodes", "2",
            "--merge-mode", "merged", "--game-impl", "jit",
        ]) == 0
        assert "RF=" in capsys.readouterr().out


class TestReliabilityFlags:
    """PR-8 flags: friendly errors, checkpoint/resume, fault injection."""

    def test_missing_edgelist_friendly_error(self):
        with pytest.raises(SystemExit, match="file not found"):
            main(["partition", "--edgelist", "/definitely/not/here.txt"])

    def test_edgelist_directory_friendly_error(self, tmp_path):
        with pytest.raises(SystemExit, match="directory"):
            main(["partition", "--edgelist", str(tmp_path)])

    def test_corrupt_edgelist_strict_friendly_error(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nnot an edge\n")
        with pytest.raises(SystemExit, match="lenient"):
            main(["partition", "--edgelist", str(path)])

    def test_corrupt_edgelist_lenient_recovers(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n1 2\n2 0\nnot an edge\n")
        rc = main([
            "partition", "--edgelist", str(path), "--ingest-mode", "lenient",
            "-k", "2", "--algorithm", "hashing",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "dropped 1 malformed" in err

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="--resume requires --checkpoint-dir"):
            main(["serve", "--resume"])

    def test_resume_empty_dir_friendly_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot resume"):
            main([
                "serve", "--scale", "0.02", "--checkpoint-dir", str(tmp_path),
                "--resume",
            ])

    def test_bad_task_timeout(self):
        with pytest.raises(SystemExit, match="task-timeout must be positive"):
            main(["distribute", "--task-timeout", "0"])

    def test_bad_retries(self):
        with pytest.raises(SystemExit, match="retries must be"):
            main(["distribute", "--retries", "-2"])

    def test_bad_inject_spec(self):
        with pytest.raises(SystemExit, match="inject-faults"):
            main(["distribute", "--inject-faults", "meteor"])

    def test_bad_checkpoint_every(self):
        with pytest.raises(SystemExit, match="checkpoint-every"):
            main(["serve", "--checkpoint-every", "0"])

    def test_serve_checkpoint_then_resume_matches(self, tmp_path, capsys):
        args = ["serve", "--dataset", "uk", "--scale", "0.03", "-k", "4",
                "--num-batches", "5", "--checkpoint-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        # the resumed run re-serves nothing and reports the same final state
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_distribute_with_injected_crash_still_partitions(self, capsys):
        rc = main([
            "distribute", "--scale", "0.03", "-k", "4", "--num-nodes", "3",
            "--merge-mode", "merged", "--inject-faults", "crash,seed=1",
        ])
        assert rc == 0
        assert "RF=" in capsys.readouterr().out
