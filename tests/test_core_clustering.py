"""Tests for pass 1 — streaming clustering (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import star_graph, web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.core.clustering import ClusteringState, streaming_clustering


def stream_of(edges, n=None):
    g = DiGraph.from_edges(edges) if n is None else DiGraph.from_edges(edges)
    return EdgeStream.from_graph(g)


class TestAllocation:
    def test_every_seen_vertex_gets_cluster(self):
        s = stream_of([(0, 1), (2, 3)])
        result = streaming_clustering(s, max_volume=100)
        assert (result.cluster_of[[0, 1, 2, 3]] >= 0).all()

    def test_unseen_vertex_stays_unclustered(self):
        g = DiGraph([0], [1], num_vertices=5)
        result = streaming_clustering(EdgeStream.from_graph(g), max_volume=10)
        assert result.cluster_of[4] == -1

    def test_degrees_counted_over_stream(self):
        s = stream_of([(0, 1), (0, 2), (1, 2)])
        result = streaming_clustering(s, max_volume=100)
        assert result.degree.tolist() == [2, 2, 2]

    def test_allocation_counter(self):
        s = stream_of([(0, 1), (2, 3), (0, 2)])
        result = streaming_clustering(s, max_volume=100)
        assert result.allocations == 4


class TestMigration:
    def test_connected_pair_merges(self):
        s = stream_of([(0, 1)])
        result = streaming_clustering(s, max_volume=100)
        assert result.cluster_of[0] == result.cluster_of[1]

    def test_triangle_single_cluster(self):
        s = stream_of([(0, 1), (1, 2), (2, 0)])
        result = streaming_clustering(s, max_volume=100)
        assert np.unique(result.cluster_of).size == 1

    def test_communities_stay_separate(self):
        # two triangles joined by nothing
        s = stream_of([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        result = streaming_clustering(s, max_volume=100)
        assert result.cluster_of[0] == result.cluster_of[1] == result.cluster_of[2]
        assert result.cluster_of[3] == result.cluster_of[4] == result.cluster_of[5]
        assert result.cluster_of[0] != result.cluster_of[3]

    def test_migration_blocked_at_capacity(self):
        # vmax=2: after (0,1) merge the cluster is at volume 2 == vmax, so
        # vertex 2 cannot migrate in on edge (1,2)
        s = stream_of([(0, 1), (1, 2)])
        result = streaming_clustering(s, max_volume=2, enable_splitting=False)
        assert result.cluster_of[2] != result.cluster_of[0]

    def test_smaller_volume_cluster_joins_bigger(self):
        # build cluster {0,1,2} (volume 6 after 3 edges), then a fresh pair
        # (3,4); edge (3,0) should pull 3 into the bigger cluster
        s = stream_of([(0, 1), (1, 2), (2, 0), (3, 4), (3, 0)])
        result = streaming_clustering(s, max_volume=100)
        assert result.cluster_of[3] == result.cluster_of[0]


class TestSplitting:
    def test_no_split_below_capacity(self):
        s = stream_of([(0, 1), (1, 2)])
        result = streaming_clustering(s, max_volume=1000)
        assert result.splits == 0
        assert not result.divided.any()

    def test_split_marks_divided_and_mirror(self):
        graph = web_crawl_graph(600, avg_out_degree=10, host_size=30, seed=2)
        s = EdgeStream.from_graph(graph)
        result = streaming_clustering(s, max_volume=s.num_edges // 64)
        assert result.splits > 0
        assert result.divided.sum() == len(result.mirror_clusters) or (
            # mirrors pointing at later-emptied clusters are dropped
            result.divided.sum() >= len(result.mirror_clusters)
        )
        for v, mirrors in result.mirror_clusters.items():
            assert result.divided[v]
            for c in mirrors:
                assert 0 <= c < result.num_clusters

    def test_split_at_most_once_per_vertex(self):
        graph = web_crawl_graph(600, avg_out_degree=10, host_size=30, seed=2)
        s = EdgeStream.from_graph(graph)
        result = streaming_clustering(s, max_volume=s.num_edges // 64)
        assert result.splits == int(result.divided.sum())
        for mirrors in result.mirror_clusters.values():
            assert len(mirrors) == 1

    def test_disabled_splitting_is_holl(self):
        graph = web_crawl_graph(400, avg_out_degree=8, seed=3)
        s = EdgeStream.from_graph(graph)
        result = streaming_clustering(s, s.num_edges // 32, enable_splitting=False)
        assert result.splits == 0
        assert not result.divided.any()
        assert not result.mirror_clusters

    def test_clugp_equals_holl_when_no_split_triggers(self):
        # Section IV-A: "if the splitting operation is not triggered, CLUGP
        # degenerates into Holl"
        s = stream_of([(0, 1), (1, 2), (2, 3), (3, 0)])
        with_split = streaming_clustering(s, max_volume=1000, enable_splitting=True)
        without = streaming_clustering(s, max_volume=1000, enable_splitting=False)
        assert np.array_equal(with_split.cluster_of, without.cluster_of)

    def test_star_burst_splits_hub_when_degree_fits(self):
        # hub degree 20 < vmax 30, but the hub cluster fills from leaf mass
        g = star_graph(20)
        extra = [(i, i + 1) for i in range(1, 20)]  # leaf chain adds volume
        edges = list(zip(g.src.tolist(), g.dst.tolist())) + extra
        s = stream_of(edges)
        result = streaming_clustering(s, max_volume=30)
        # the clustering must terminate and keep ids consistent
        assert (result.cluster_of[result.degree > 0] >= 0).all()


class TestVolumeAccounting:
    def test_volume_equals_member_degree_sum(self):
        # every volume transfer (allocation +1 per endpoint, migration and
        # split +/- deg) keeps vol(c) == sum of current member degrees,
        # so the final table must match an independent recomputation exactly
        graph = web_crawl_graph(500, avg_out_degree=8, seed=4)
        s = EdgeStream.from_graph(graph)
        result = streaming_clustering(s, max_volume=s.num_edges // 16)
        recomputed = np.zeros(result.num_clusters, dtype=np.int64)
        for v, c in enumerate(result.cluster_of.tolist()):
            if c >= 0:
                recomputed[c] += result.degree[v]
        assert np.array_equal(recomputed, result.volume)
        assert recomputed.sum() == 2 * s.num_edges

    def test_cluster_sizes_match_members(self):
        s = stream_of([(0, 1), (1, 2), (3, 4)])
        result = streaming_clustering(s, max_volume=100)
        sizes = result.cluster_sizes()
        assert sizes.sum() == 5
        members = result.members()
        assert sorted(len(m) for m in members.values()) == sorted(
            sizes[sizes > 0].tolist()
        )


class TestCompaction:
    def test_cluster_ids_dense(self):
        graph = web_crawl_graph(500, avg_out_degree=8, seed=5)
        s = EdgeStream.from_graph(graph)
        result = streaming_clustering(s, max_volume=s.num_edges // 32)
        active = result.cluster_of[result.cluster_of >= 0]
        assert active.max() == result.num_clusters - 1
        assert np.unique(active).size == result.num_clusters

    def test_volume_indexed_by_compact_id(self):
        graph = web_crawl_graph(500, avg_out_degree=8, seed=5)
        s = EdgeStream.from_graph(graph)
        result = streaming_clustering(s, max_volume=s.num_edges // 32)
        assert result.volume.shape == (result.num_clusters,)


class TestValidation:
    def test_rejects_bad_vmax(self):
        s = stream_of([(0, 1)])
        with pytest.raises(ValueError):
            streaming_clustering(s, max_volume=0)

    def test_self_loops_handled(self):
        s = stream_of([(0, 0), (0, 1)])
        result = streaming_clustering(s, max_volume=10)
        assert result.degree[0] == 3  # self-loop counts twice

    def test_empty_stream(self):
        s = EdgeStream([], [], num_vertices=3)
        result = streaming_clustering(s, max_volume=5)
        assert result.num_clusters == 0


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 25), st.integers(0, 25)), min_size=1, max_size=120
    ),
    vmax=st.integers(1, 40),
    split=st.booleans(),
)
def test_property_clustering_invariants(edges, vmax, split):
    s = stream_of(edges)
    result = streaming_clustering(s, max_volume=vmax, enable_splitting=split)
    seen = np.zeros(s.num_vertices, dtype=bool)
    seen[s.src] = True
    seen[s.dst] = True
    # every seen vertex clustered, no unseen vertex clustered
    assert ((result.cluster_of >= 0) == seen).all()
    # degrees match the stream
    assert np.array_equal(result.degree, s.degrees())
    # compact ids and consistent volume table
    if result.num_clusters:
        active = result.cluster_of[result.cluster_of >= 0]
        assert active.max() < result.num_clusters
    assert result.volume.sum() == 2 * s.num_edges
    # mirrors only for divided vertices, pointing at live clusters
    for v, mirrors in result.mirror_clusters.items():
        assert result.divided[v]
        assert all(0 <= c < result.num_clusters for c in mirrors)


class TestRawClusterStability:
    """raw_clusters()/raw_ids — the service's cross-snapshot correlation."""

    def test_raw_clusters_before_and_after_ingest(self):
        state = ClusteringState(6, max_volume=8)
        verts = np.arange(6)
        assert (state.raw_clusters(verts) == -1).all()
        state.ingest_pair(np.array([0, 1]), np.array([1, 2]))
        raw = state.raw_clusters(verts)
        assert (raw[:3] >= 0).all()
        assert (raw[3:] == -1).all()

    def test_raw_ids_map_compact_to_raw(self):
        state = ClusteringState(8, max_volume=4)
        state.ingest_pair(
            np.array([0, 1, 4, 5, 0]), np.array([1, 2, 5, 6, 4])
        )
        snap = state.snapshot()
        assert snap.raw_ids is not None
        assert snap.raw_ids.shape == (snap.num_clusters,)
        # per-vertex raw id agrees with raw_ids[compact id]
        raw = state.raw_clusters(np.arange(8))
        seen = snap.cluster_of >= 0
        assert np.array_equal(
            raw[seen], snap.raw_ids[snap.cluster_of[seen]]
        )

    def test_raw_ids_survive_further_ingestion(self):
        rng = np.random.default_rng(2)
        u = rng.integers(0, 40, size=200)
        v = rng.integers(0, 40, size=200)
        state = ClusteringState(40, max_volume=10)
        state.ingest_pair(u[:100], v[:100])
        snap1 = state.snapshot()
        state.ingest_pair(u[100:], v[100:])
        snap2 = state.snapshot()
        # a raw id present in both snapshots refers to the same live
        # cluster: its volume evolved but it was never renumbered
        common = np.intersect1d(snap1.raw_ids, snap2.raw_ids)
        assert common.size > 0
        assert state.num_raw >= max(int(snap2.raw_ids.max()) + 1, 1)
