"""Hash dtype/overflow regression tests.

The chunked streaming core applies the hash functions to whole int64
arrays while the per-edge reference path calls them one scalar at a time;
an implicit-cast or overflow difference between the two would silently
desynchronize the paths.  These tests pin (a) exact scalar/array parity
across input dtypes and extreme ids, and (b) golden output values so a
platform or numpy upgrade cannot quietly change placements.
"""

import numpy as np
import pytest

from repro._util import (
    hash_pair_to_partition,
    hash_to_partition,
    splitmix64,
    stable_argsort_bounded,
)

#: ids spanning the int64 range, including values whose uint64 products wrap
EXTREME_IDS = [0, 1, 17, 255, 2**16, 2**31, 2**31 - 1, 2**62, 2**63 - 1]


class TestScalarArrayParity:
    def test_splitmix64_scalar_matches_array(self):
        arr = np.asarray(EXTREME_IDS, dtype=np.int64)
        array_out = splitmix64(arr)
        for x, mixed in zip(EXTREME_IDS, array_out.tolist()):
            assert int(splitmix64(x)) == mixed

    @pytest.mark.parametrize("seed", [0, 1, 12345])
    @pytest.mark.parametrize("k", [1, 2, 7, 64, 1013])
    def test_hash_to_partition_scalar_matches_int64_array(self, seed, k):
        arr = np.asarray(EXTREME_IDS, dtype=np.int64)
        array_out = hash_to_partition(arr, k, seed=seed)
        assert array_out.dtype == np.int64
        for x, p in zip(EXTREME_IDS, array_out.tolist()):
            assert int(hash_to_partition(x, k, seed=seed)) == p

    @pytest.mark.parametrize("seed", [0, 9])
    def test_hash_pair_scalar_matches_int64_array(self, seed):
        u = np.asarray(EXTREME_IDS, dtype=np.int64)
        v = np.asarray(EXTREME_IDS[::-1], dtype=np.int64)
        array_out = hash_pair_to_partition(u, v, 13, seed=seed)
        for x, y, p in zip(EXTREME_IDS, EXTREME_IDS[::-1], array_out.tolist()):
            assert int(hash_pair_to_partition(x, y, 13, seed=seed)) == p

    def test_narrow_dtypes_match_int64(self):
        ids = [0, 1, 17, 255]
        reference = hash_to_partition(np.asarray(ids, dtype=np.int64), 7, seed=3)
        for dtype in (np.int32, np.uint32, np.uint64):
            assert np.array_equal(
                hash_to_partition(np.asarray(ids, dtype=dtype), 7, seed=3), reference
            )

    def test_uint64_top_bit_ids(self):
        # ids above 2**63 cannot be vertex ids, but must still hash
        # identically through the scalar and array paths
        big = np.uint64(2**64 - 1)
        scalar = int(hash_to_partition(big, 7, seed=0))
        array = int(hash_to_partition(np.asarray([big], dtype=np.uint64), 7, seed=0)[0])
        assert scalar == array

    def test_results_in_range(self):
        out = hash_pair_to_partition(
            np.asarray(EXTREME_IDS, dtype=np.int64),
            np.asarray(EXTREME_IDS, dtype=np.int64),
            5,
            seed=2,
        )
        assert out.min() >= 0 and out.max() < 5


class TestGoldenValues:
    def test_splitmix64_reference_vectors(self):
        # splitmix64(x) is the SplitMix64 finalizer of state x; the x=0
        # and x=1 values match the published first outputs of those seeds
        assert int(splitmix64(0)) == 0xE220A8397B1DCDAF
        assert int(splitmix64(1)) == 0x910A2DEC89025CC1
        assert int(splitmix64(2)) == 0x975835DE1C9756CE
        # pin observed values for the partition mapper so a platform or
        # numpy change cannot silently move every edge
        assert hash_to_partition(
            np.asarray(EXTREME_IDS[:6], dtype=np.int64), 7, seed=3
        ).tolist() == [2, 4, 1, 3, 4, 5]

    def test_hash_pair_golden(self):
        u = np.asarray([0, 1, 17], dtype=np.int64)
        v = np.asarray([17, 1, 0], dtype=np.int64)
        assert hash_pair_to_partition(u, v, 13, seed=9).tolist() == [3, 9, 1]


class TestStableArgsortBounded:
    @pytest.mark.parametrize("upper", [1, 100, 1 << 16, (1 << 16) + 5, 1 << 31, 1 << 40])
    def test_matches_numpy_stable_sort(self, upper):
        rng = np.random.default_rng(0)
        values = rng.integers(0, upper, size=1000, dtype=np.int64)
        expected = np.argsort(values, kind="stable")
        assert np.array_equal(stable_argsort_bounded(values, upper), expected)

    def test_stability_on_duplicates(self):
        values = np.asarray([5, 3, 5, 3, 5, 0], dtype=np.int64)
        order = stable_argsort_bounded(values, 6)
        assert order.tolist() == [5, 1, 3, 0, 2, 4]

    def test_empty(self):
        assert stable_argsort_bounded(np.empty(0, dtype=np.int64), 10).size == 0
