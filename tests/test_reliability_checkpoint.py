"""Checkpoint container, journal, and service crash/resume bit-identity."""

import os

import numpy as np
import pytest

from repro.config import ClugpConfig, GameConfig, ReliabilityConfig
from repro.reliability.checkpoint import (
    BatchJournal,
    CheckpointError,
    CheckpointManager,
    read_checkpoint,
    write_checkpoint,
)
from repro.service import PartitionService


def _arrays():
    return {
        "a": np.arange(10, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 5),
    }


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, _arrays(), {"batch": 3, "note": "x"})
        arrays, meta = read_checkpoint(path)
        assert np.array_equal(arrays["a"], np.arange(10, dtype=np.int64))
        assert np.allclose(arrays["b"], np.linspace(0.0, 1.0, 5))
        assert meta == {"batch": 3, "note": "x"}

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "nope.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, _arrays(), {})
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint(path)

    def test_corrupt_payload_fails_digest(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, _arrays(), {})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="SHA-256"):
            read_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, _arrays(), {})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])
        with pytest.raises(CheckpointError, match="payload length"):
            read_checkpoint(path)

    def test_trailing_garbage_detected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, _arrays(), {})
        with open(path, "ab") as f:
            f.write(b"junk")
        with pytest.raises(CheckpointError, match="payload length"):
            read_checkpoint(path)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, _arrays(), {})
        write_checkpoint(path, _arrays(), {"v": 2})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["c.ckpt"]


class TestCheckpointManager:
    def test_save_prunes_to_keep(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for batch in (1, 2, 3, 4):
            mgr.save(batch, _arrays(), {"batch": batch})
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["checkpoint-00000003.ckpt", "checkpoint-00000004.ckpt"]

    def test_latest_returns_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=3)
        for batch in (1, 5, 9):
            mgr.save(batch, _arrays(), {"batch": batch})
        batch, _, meta = mgr.latest()
        assert batch == 9 and meta["batch"] == 9

    def test_latest_skips_corrupt_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=3)
        mgr.save(1, _arrays(), {"batch": 1})
        mgr.save(2, _arrays(), {"batch": 2})
        newest = tmp_path / "checkpoint-00000002.ckpt"
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        batch, _, meta = mgr.latest()
        assert batch == 1 and meta["batch"] == 1

    def test_latest_none_when_empty(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestBatchJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "j.wal"
        with BatchJournal(path) as journal:
            journal.append(0, np.array([1, 2], dtype=np.int64),
                           np.array([3, 4], dtype=np.int64))
            journal.append(1, np.array([5], dtype=np.int64),
                           np.array([6], dtype=np.int64))
            records = journal.replay()
        assert [b for b, _, _ in records] == [0, 1]
        assert np.array_equal(records[0][1], [1, 2])
        assert np.array_equal(records[1][2], [6])

    def test_empty_batch_record(self, tmp_path):
        with BatchJournal(tmp_path / "j.wal") as journal:
            empty = np.empty(0, dtype=np.int64)
            journal.append(7, empty, empty)
            records = journal.replay()
        assert len(records) == 1 and records[0][0] == 7

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "j.wal"
        with BatchJournal(path) as journal:
            journal.append(0, np.array([1], dtype=np.int64),
                           np.array([2], dtype=np.int64))
            journal.append(1, np.array([3], dtype=np.int64),
                           np.array([4], dtype=np.int64))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 5])  # cut into the second record
        with BatchJournal(path) as journal:
            records = journal.replay()
        assert [b for b, _, _ in records] == [0]

    def test_crc_corruption_drops_tail(self, tmp_path):
        path = tmp_path / "j.wal"
        with BatchJournal(path) as journal:
            journal.append(0, np.array([1], dtype=np.int64),
                           np.array([2], dtype=np.int64))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a body byte
        path.write_bytes(bytes(raw))
        with BatchJournal(path) as journal:
            assert journal.replay() == []

    def test_reset_truncates(self, tmp_path):
        path = tmp_path / "j.wal"
        with BatchJournal(path) as journal:
            journal.append(0, np.array([1], dtype=np.int64),
                           np.array([2], dtype=np.int64))
            journal.reset()
            assert journal.replay() == []
        assert os.path.getsize(path) == 0


def _feed(num_edges=3000, n=400, seed=0):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(num_edges, 2), dtype=np.int64)
    return n, np.array_split(edges, 6)


def _config(checkpoint_every=1):
    return ClugpConfig(
        num_partitions=4,
        game=GameConfig(seed=0),
        reliability=ReliabilityConfig(checkpoint_every=checkpoint_every),
    )


class TestServiceResume:
    """The PR-8 acceptance gate: killed mid-feed, a resumed service is
    bit-identical to one that was never interrupted."""

    def test_resume_bit_identical_after_abandonment(self, tmp_path):
        n, batches = _feed()
        ref = PartitionService(n, _config(), migration_cap=64)
        for batch in batches:
            ref.ingest(batch)

        svc = PartitionService(n, _config(checkpoint_every=3),
                               migration_cap=64, checkpoint_dir=str(tmp_path))
        for batch in batches[:4]:  # dies with batch 3 only in the journal
            svc.ingest(batch)
        del svc  # no close(): the crash leaves the journal as-is on disk

        resumed = PartitionService.resume(str(tmp_path))
        assert resumed.batch_index == 4
        for batch in batches[4:]:
            resumed.ingest(batch)
        assert np.array_equal(resumed.edge_partition, ref.edge_partition)
        assert np.array_equal(resumed.vertex_partition, ref.vertex_partition)
        assert np.array_equal(resumed.loads, ref.loads)
        assert len(resumed.history) == len(ref.history)
        resumed.close()

    def test_resume_replays_unacknowledged_journal_only(self, tmp_path):
        n, batches = _feed()
        svc = PartitionService(n, _config(checkpoint_every=2),
                               migration_cap=64, checkpoint_dir=str(tmp_path))
        for batch in batches[:3]:
            svc.ingest(batch)
        edges_before = svc.num_edges
        del svc
        resumed = PartitionService.resume(str(tmp_path))
        assert resumed.num_edges == edges_before
        assert resumed.batch_index == 3
        resumed.close()

    def test_resume_from_corrupt_newest_falls_back(self, tmp_path):
        n, batches = _feed()
        svc = PartitionService(n, _config(), migration_cap=64,
                               checkpoint_dir=str(tmp_path))
        for batch in batches[:3]:
            svc.ingest(batch)
        svc.close()
        newest = max(tmp_path.glob("checkpoint-*.ckpt"))
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        resumed = PartitionService.resume(str(tmp_path))
        # older checkpoint + journal replay still recovers a valid service
        assert resumed.batch_index >= 2
        resumed.close()

    def test_resume_without_checkpoints_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            PartitionService.resume(str(tmp_path))

    def test_checkpoint_restores_config_and_history(self, tmp_path):
        n, batches = _feed()
        svc = PartitionService(n, _config(), migration_cap=7,
                               quality_every=2, checkpoint_dir=str(tmp_path))
        for batch in batches[:2]:
            svc.ingest(batch)
        svc.close()
        resumed = PartitionService.resume(str(tmp_path))
        assert resumed.migration_cap == 7
        assert resumed.quality_every == 2
        assert resumed.config.num_partitions == 4
        assert [s.batch for s in resumed.history] == [0, 1]
        assert resumed.history[0].num_edges == svc.history[0].num_edges
        resumed.close()

    def test_resumed_service_keeps_checkpointing(self, tmp_path):
        n, batches = _feed()
        svc = PartitionService(n, _config(), checkpoint_dir=str(tmp_path))
        svc.ingest(batches[0])
        svc.close()
        resumed = PartitionService.resume(str(tmp_path))
        resumed.ingest(batches[1])
        batch, _, meta = CheckpointManager(tmp_path).latest()
        assert batch == 2 and meta["batch_index"] == 2
        resumed.close()

    def test_service_without_checkpoint_dir_rejects_checkpoint(self):
        svc = PartitionService(100, _config())
        with pytest.raises(RuntimeError, match="checkpoint_dir"):
            svc.checkpoint()
