"""Tests for graph sampling and structural property analysis."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_graph, powerlaw_configuration_graph
from repro.graph.properties import (
    degree_histogram,
    degree_stats,
    fit_powerlaw_alpha,
    gini_coefficient,
)
from repro.graph.sampling import bfs_ball, sample_edges


class TestSampleEdges:
    def test_size(self):
        g = erdos_renyi_graph(200, 2000, seed=1)
        sub = sample_edges(g, 500, seed=2)
        assert sub.num_edges == 500

    def test_edges_are_subset(self):
        g = erdos_renyi_graph(100, 800, seed=1)
        sub = sample_edges(g, 100, seed=2, compact=False)
        orig = set(map(tuple, g.edges().tolist()))
        assert all(tuple(e) in orig for e in sub.edges().tolist())

    def test_compact_densifies_ids(self):
        g = erdos_renyi_graph(1000, 100, seed=3)
        sub = sample_edges(g, 10, seed=4, compact=True)
        assert sub.num_vertices <= 20

    def test_preserves_stream_order_of_survivors(self):
        g = DiGraph([0, 1, 2, 3], [1, 2, 3, 0])
        sub = sample_edges(g, 4, seed=0, compact=False)
        assert np.array_equal(sub.src, g.src)

    def test_rejects_oversample(self):
        g = erdos_renyi_graph(10, 20, seed=1)
        with pytest.raises(ValueError, match="cannot sample"):
            sample_edges(g, 21)

    def test_deterministic(self):
        g = erdos_renyi_graph(100, 500, seed=1)
        a = sample_edges(g, 50, seed=9)
        b = sample_edges(g, 50, seed=9)
        assert a == b


class TestBfsBall:
    def test_respects_cap(self):
        g = erdos_renyi_graph(300, 3000, seed=2)
        sub = bfs_ball(g, source=0, max_edges=100, compact=False)
        assert sub.num_edges <= 100

    def test_connected_from_source(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (5, 6)])
        sub = bfs_ball(g, source=0, max_edges=10, compact=False)
        edges = set(map(tuple, sub.edges().tolist()))
        assert (5, 6) not in edges
        assert (0, 1) in edges and (1, 2) in edges

    def test_rejects_bad_source(self):
        g = erdos_renyi_graph(10, 20, seed=1)
        with pytest.raises(ValueError, match="source"):
            bfs_ball(g, source=99, max_edges=5)


class TestProperties:
    def test_degree_histogram_skips_zeros(self):
        degrees = np.array([0, 0, 1, 1, 3])
        values, counts = degree_histogram(degrees)
        assert values.tolist() == [1, 3]
        assert counts.tolist() == [2, 1]

    def test_alpha_fit_on_known_tail(self):
        rng = np.random.default_rng(5)
        # discrete Pareto tail, alpha = 1 + 1.5 = 2.5, starting at d=10 so
        # the discrete-floor bias of the Hill estimator is small
        u = rng.random(100_000)
        degrees = np.floor(10.0 * (1 - u) ** (-1 / 1.5)).astype(int)
        alpha = fit_powerlaw_alpha(degrees, d_min=10)
        assert 2.2 < alpha < 2.7

    def test_alpha_fit_monotone_in_tail_heaviness(self):
        rng = np.random.default_rng(6)
        u = rng.random(50_000)
        heavy = np.floor(10.0 * (1 - u) ** (-1 / 1.0)).astype(int)
        light = np.floor(10.0 * (1 - u) ** (-1 / 3.0)).astype(int)
        assert fit_powerlaw_alpha(heavy, 10) < fit_powerlaw_alpha(light, 10)

    def test_alpha_nan_for_tiny_input(self):
        assert np.isnan(fit_powerlaw_alpha(np.array([5])))

    def test_gini_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert gini_coefficient(values) > 0.95

    def test_gini_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    def test_degree_stats_fields(self):
        g = powerlaw_configuration_graph(2000, seed=1)
        stats = degree_stats(g)
        assert stats.num_vertices == 2000
        assert stats.num_edges == g.num_edges
        assert stats.max_degree >= stats.median_degree
        assert 0.0 < stats.gini < 1.0

    def test_degree_stats_empty_graph(self):
        stats = degree_stats(DiGraph.empty(10))
        assert stats.num_edges == 0
        assert np.isnan(stats.alpha)
