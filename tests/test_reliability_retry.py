"""The retry loop: crash/hang/raise/invalid recovery and clean errors.

Includes the chaos gate for the distributed driver: with deterministic
fault injection killing, hanging, or corrupting one worker per stage,
``distributed_clugp`` on every backend produces edge partitions
bit-identical to the fault-free run.
"""

import zlib

import numpy as np
import pytest

from repro.config import ClugpConfig, ReliabilityConfig
from repro.core.distributed import distributed_clugp
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.reliability.faults import FaultInjector, InjectedCrash
from repro.reliability.retry import (
    RetryPolicy,
    RetryStats,
    ShardTaskError,
    TaskFailure,
    run_reliable,
)


def _double(task):
    return task * 2


def _raise_value_error(task):
    raise ValueError(f"worker rejected task {task}")


def _sleep_then_return(task):
    import time

    time.sleep(task)
    return task


class TestPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert policy.backoff(0) == 0.0
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0)

    def test_failure_describe(self):
        failure = TaskFailure(3, "timeout", 1)
        assert "task 3" in failure.describe()
        assert "timeout" in failure.describe()


class TestHappyPath:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_results_in_task_order(self, parallel):
        results = run_reliable(list(range(6)), _double, parallel=parallel)
        assert results == [0, 2, 4, 6, 8, 10]

    def test_stats_count_attempts(self):
        stats = RetryStats()
        run_reliable([1, 2, 3], _double, parallel=False, stats=stats)
        assert stats.attempts == 3
        assert stats.retries == 0
        assert stats.failures == []


class TestRaisePropagation:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_worker_exception_surfaces_chained(self, parallel):
        policy = RetryPolicy(max_retries=0, backoff_base=0.0)
        with pytest.raises(ShardTaskError) as excinfo:
            run_reliable([1, 2], _raise_value_error, policy=policy,
                         parallel=parallel, stage="probe")
        message = str(excinfo.value)
        assert "probe" in message and "raise" in message
        # the original worker exception stays attached via the cause chain
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "worker rejected task" in str(excinfo.value.__cause__)

    def test_process_worker_exception_is_not_a_bare_pool_error(self):
        policy = RetryPolicy(max_retries=0, backoff_base=0.0)
        with pytest.raises(ShardTaskError) as excinfo:
            run_reliable([1, 2], _raise_value_error, policy=policy,
                         backend="process", stage="shard")
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestCrashRecovery:
    def test_injected_crash_recovers_in_thread_mode(self):
        stats = RetryStats()
        inj = FaultInjector(kinds=("crash",), seed=1)
        results = run_reliable(
            list(range(4)), _double, policy=RetryPolicy(backoff_base=0.0),
            inject=inj, stats=stats, stage="s",
        )
        assert results == [0, 2, 4, 6]
        assert stats.raises == 1  # thread crash degrades to InjectedCrash
        assert stats.retries == 1

    def test_process_crash_breaks_pool_and_recovers(self):
        stats = RetryStats()
        inj = FaultInjector(kinds=("crash",), seed=1)
        results = run_reliable(
            list(range(4)), _double, policy=RetryPolicy(backoff_base=0.0),
            backend="process", inject=inj, stats=stats, stage="s",
        )
        assert results == [0, 2, 4, 6]
        # os._exit broke the pool; at least the victim was counted and retried
        assert stats.crashes >= 1
        assert stats.retries >= 1

    def test_persistent_crash_exhausts_retries(self):
        inj = FaultInjector(kinds=("crash",), seed=1, persist=True)
        with pytest.raises(ShardTaskError, match="failed after 2 attempts"):
            run_reliable(
                list(range(4)), _double,
                policy=RetryPolicy(max_retries=1, backoff_base=0.0),
                parallel=False, inject=inj, stage="s",
            )

    def test_serial_crash_error_chains_injected_crash(self):
        inj = FaultInjector(kinds=("crash",), seed=1, persist=True)
        with pytest.raises(ShardTaskError) as excinfo:
            run_reliable(
                list(range(4)), _double,
                policy=RetryPolicy(max_retries=0, backoff_base=0.0),
                parallel=False, inject=inj, stage="s",
            )
        assert isinstance(excinfo.value.__cause__, InjectedCrash)


class TestTimeouts:
    def test_hung_process_worker_times_out_and_recovers(self):
        stats = RetryStats()
        inj = FaultInjector(kinds=("hang",), seed=0, hang_seconds=30.0)
        # make sure this seed's single victim actually hangs
        assert any(inj.decide("s", n, 3, 0) == "hang" for n in range(3))
        results = run_reliable(
            [1, 2, 3], _double,
            policy=RetryPolicy(task_timeout=1.0, backoff_base=0.0),
            backend="process", inject=inj, stats=stats, stage="s",
        )
        assert results == [2, 4, 6]
        assert stats.timeouts >= 1

    def test_timeout_exhaustion_raises_shard_error(self):
        inj = FaultInjector(kinds=("hang",), seed=0, hang_seconds=30.0,
                            persist=True)
        with pytest.raises(ShardTaskError, match="timeout"):
            run_reliable(
                [1, 2, 3], _double,
                policy=RetryPolicy(max_retries=0, task_timeout=0.5,
                                   backoff_base=0.0),
                backend="process", inject=inj, stage="s",
            )

    def test_slow_worker_within_deadline_is_not_retried(self):
        stats = RetryStats()
        results = run_reliable(
            [0.01, 0.02], _sleep_then_return,
            policy=RetryPolicy(task_timeout=10.0, backoff_base=0.0),
            stats=stats,
        )
        assert results == [0.01, 0.02]
        assert stats.retries == 0


class _Checked:
    """Payload carrying a checksum over its volume array."""

    def __init__(self, value):
        self.volume = np.full(4, value, dtype=np.int64)
        self.checksum = zlib.crc32(self.volume.tobytes())


def _make_checked(task):
    return _Checked(task)


def _validate_checked(result, index):
    if zlib.crc32(result.volume.tobytes()) != result.checksum:
        return f"checksum mismatch on task {index}"
    return None


class TestValidation:
    def test_corrupt_result_quarantined_and_rerun(self):
        stats = RetryStats()
        inj = FaultInjector(kinds=("corrupt",), seed=0)
        results = run_reliable(
            [10, 20, 30], _make_checked,
            policy=RetryPolicy(backoff_base=0.0),
            parallel=False, inject=inj, stats=stats,
            validate=_validate_checked, stage="s",
        )
        assert [int(r.volume[0]) for r in results] == [10, 20, 30]
        assert all(_validate_checked(r, i) is None for i, r in enumerate(results))
        assert stats.invalid == 1
        assert stats.retries == 1

    def test_persistent_corruption_exhausts(self):
        inj = FaultInjector(kinds=("corrupt",), seed=0, persist=True)
        with pytest.raises(ShardTaskError, match="invalid"):
            run_reliable(
                [10, 20, 30], _make_checked,
                policy=RetryPolicy(max_retries=1, backoff_base=0.0),
                parallel=False, inject=inj,
                validate=_validate_checked, stage="s",
            )


@pytest.fixture(scope="module")
def chaos_stream():
    graph = web_crawl_graph(400, avg_out_degree=8.0, host_size=25, seed=3)
    return EdgeStream.from_graph(graph, order="natural")


def _run_distributed(stream, spec, backend="thread", timeout=None):
    rel = ReliabilityConfig(
        inject_faults=spec, task_timeout=timeout,
        backoff_base=0.0, backoff_max=0.0,
    )
    cfg = ClugpConfig(num_partitions=4, reliability=rel)
    return distributed_clugp(
        stream, 4, num_nodes=3, config=cfg, seed=0, merge_mode="merged",
        backend=backend,
    )


class TestDistributedChaosGate:
    """Faults injected into the real shard pipeline leave results bit-identical."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_thread_backend_bit_identical_under_faults(self, chaos_stream, seed):
        baseline = _run_distributed(chaos_stream, "")
        chaotic = _run_distributed(
            chaos_stream, f"crash,slow,corrupt,seed={seed},slow_seconds=0.05"
        )
        assert np.array_equal(
            baseline.assignment.edge_partition, chaotic.assignment.edge_partition
        )

    def test_process_backend_crash_bit_identical(self, chaos_stream):
        baseline = _run_distributed(chaos_stream, "", backend="process")
        chaotic = _run_distributed(
            chaos_stream, "crash,seed=1", backend="process"
        )
        assert np.array_equal(
            baseline.assignment.edge_partition, chaotic.assignment.edge_partition
        )
        assert chaotic.to_dict()["reliability"].get("retries", 0) >= 1

    def test_process_backend_hang_bit_identical(self, chaos_stream):
        baseline = _run_distributed(chaos_stream, "", backend="process")
        chaotic = _run_distributed(
            chaos_stream, "hang,seed=0,hang_seconds=30", backend="process",
            timeout=2.0,
        )
        assert np.array_equal(
            baseline.assignment.edge_partition, chaotic.assignment.edge_partition
        )

    def test_corruption_quarantined_by_summary_validation(self, chaos_stream):
        baseline = _run_distributed(chaos_stream, "")
        chaotic = _run_distributed(chaos_stream, "corrupt,seed=3")
        assert np.array_equal(
            baseline.assignment.edge_partition, chaotic.assignment.edge_partition
        )

    def test_counters_reported_in_to_dict(self, chaos_stream):
        chaotic = _run_distributed(chaos_stream, "crash,seed=1")
        counters = chaotic.to_dict()["reliability"]
        assert counters.get("retries", 0) >= 1
