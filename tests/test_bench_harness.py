"""Tests for the benchmark harness module itself."""

import pytest

from repro.bench.harness import (
    DEFAULT_ALGORITHMS,
    SweepResult,
    memory_vs_partitions,
    pagerank_costs,
    rf_vs_partitions,
    run_algorithm,
    runtime_vs_partitions,
    series_table,
)
from repro.graph.stream import EdgeStream


@pytest.fixture(scope="module")
def stream(crawl_graph):
    return EdgeStream.from_graph(crawl_graph, order="natural")


class TestSweepResult:
    def test_add_and_get(self):
        result = SweepResult(x_name="k", metric_name="RF")
        result.add("a", 4, 1.5)
        result.add("b", 4, 2.5)
        result.add("a", 8, 1.8)
        result.add("b", 8, 2.2)
        assert result.get("a", 4) == 1.5
        assert result.get("b", 8) == 2.2
        assert result.x_values == [4, 8]

    def test_winner_at(self):
        result = SweepResult(x_name="k", metric_name="RF")
        result.add("a", 4, 1.5)
        result.add("b", 4, 1.2)
        assert result.winner_at(4) == "b"

    def test_str_renders_series(self):
        result = SweepResult(x_name="k", metric_name="RF")
        result.add("alg", 4, 1.234)
        text = str(result)
        assert "alg" in text and "1.234" in text

    def test_series_table_title(self):
        result = SweepResult(x_name="k", metric_name="RF")
        result.add("alg", 4, 1.0)
        assert series_table(result, title="T").startswith("T\n")


class TestRunAlgorithm:
    def test_uses_preferred_order(self, stream):
        partitioner, assignment = run_algorithm("hdrf", stream, 4, seed=0)
        assert partitioner.name == "hdrf"
        assert assignment.num_partitions == 4

    def test_kwargs_forwarded(self, stream):
        partitioner, _ = run_algorithm("hdrf", stream, 4, lambda_bal=2.5)
        assert partitioner.lambda_bal == 2.5

    def test_natural_order_kept_for_clugp(self, stream):
        _, assignment = run_algorithm("clugp", stream, 4)
        # CLUGP runs on the given (crawl-order) stream itself
        assert assignment.stream is stream

    def test_disable_preferred_order(self, stream):
        _, assignment = run_algorithm(
            "hdrf", stream, 4, use_preferred_order=False
        )
        assert assignment.stream is stream


class TestSweeps:
    def test_rf_sweep_shape(self, stream):
        result = rf_vs_partitions(stream, [2, 4], algorithms=("hashing", "dbh"))
        assert set(result.series) == {"hashing", "dbh"}
        assert result.x_values == [2, 4]
        for values in result.series.values():
            assert all(v >= 1.0 for v in values)

    def test_runtime_sweep_positive(self, stream):
        result = runtime_vs_partitions(stream, [2], algorithms=("hashing",))
        assert result.get("hashing", 2) >= 0.0

    def test_memory_sweep(self, stream):
        result = memory_vs_partitions(stream, [4], algorithms=("hashing", "dbh"))
        assert result.get("hashing", 4) == 0.0
        assert result.get("dbh", 4) > 0

    def test_pagerank_costs(self, stream):
        costs = pagerank_costs(
            stream, 4, algorithms=("hashing", "clugp"), max_supersteps=3
        )
        assert set(costs) == {"hashing", "clugp"}
        for cost in costs.values():
            assert cost.num_supersteps == 3

    def test_default_algorithm_set_is_table1(self):
        assert set(DEFAULT_ALGORITHMS) == {
            "hdrf",
            "greedy",
            "hashing",
            "dbh",
            "mint",
            "clugp",
        }
