"""Tests for quality metrics and comparison reports."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    cut_edges,
    mirror_count,
    quality_report,
    replication_factor,
    relative_balance,
)
from repro.analysis.report import ComparisonTable, compare_partitioners, format_table
from repro.graph.stream import EdgeStream
from repro.partitioners import HashingPartitioner, GreedyPartitioner
from repro.partitioners.base import PartitionAssignment


def make_assignment(parts, k=2):
    stream = EdgeStream([0, 1, 2, 0], [1, 2, 3, 3], num_vertices=4)
    return PartitionAssignment(stream, parts, num_partitions=k)


class TestMetrics:
    def test_replication_factor(self):
        a = make_assignment([0, 0, 1, 1])
        assert replication_factor(a) == pytest.approx(1.5)

    def test_relative_balance(self):
        a = make_assignment([0, 0, 0, 1])
        assert relative_balance(a) == pytest.approx(1.5)

    def test_mirror_count(self):
        a = make_assignment([0, 0, 1, 1])
        assert mirror_count(a) == 2  # v0 and v2 have one mirror each

    def test_mirror_count_zero_when_single_partition(self):
        a = make_assignment([0, 0, 0, 0], k=1)
        assert mirror_count(a) == 0

    def test_cut_edges_zero_when_colocated(self):
        # 4-cycle, all edges in one partition: every endpoint is backed by
        # its other incident edge, so no edge forced a new replica
        a = make_assignment([0, 0, 0, 0], k=2)
        assert cut_edges(a) == 0

    def test_cut_edges_counts_forced_replicas(self):
        # path 0-1-2 split across partitions: each edge's endpoints share
        # nothing once the edge's own placement is discounted
        stream = EdgeStream([0, 1], [1, 2], num_vertices=3)
        a = PartitionAssignment(stream, [0, 70], num_partitions=100)
        assert cut_edges(a) == 2

    def test_cut_edges_backed_by_second_edge(self):
        # parallel edges in the same partition back each other up
        stream = EdgeStream([0, 0], [1, 1], num_vertices=2)
        a = PartitionAssignment(stream, [1, 1], num_partitions=2)
        assert cut_edges(a) == 0

    def test_cut_edges_self_loops(self):
        # a lone self-loop is cut; a self-loop backed by another edge is not
        lone = PartitionAssignment(
            EdgeStream([0], [0], num_vertices=1), [0], num_partitions=2
        )
        assert cut_edges(lone) == 1
        backed = PartitionAssignment(
            EdgeStream([0, 0], [0, 1], num_vertices=2), [0, 0], num_partitions=2
        )
        assert cut_edges(backed) == 1  # loop is backed; the (0,1) edge forces v1

    def test_quality_report_fields(self):
        a = make_assignment([0, 0, 1, 1])
        report = quality_report(a, algorithm="test", state_memory_bytes=64)
        assert report.algorithm == "test"
        assert report.num_edges == 4
        assert report.replication_factor == pytest.approx(1.5)
        assert report.state_memory_bytes == 64
        assert report.max_partition_edges == 2

    def test_quality_report_row(self):
        a = make_assignment([0, 1, 0, 1])
        row = quality_report(a, algorithm="x").row()
        assert row[0] == "x" and row[1] == 2


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_comparison_table_best(self):
        table = ComparisonTable(title="t")
        a = make_assignment([0, 0, 1, 1])
        b = make_assignment([0, 0, 0, 0])
        table.add(quality_report(a, algorithm="worse"))
        table.add(quality_report(b, algorithm="better"))
        assert table.best_by_replication().algorithm == "better"
        assert table.get("worse").algorithm == "worse"
        with pytest.raises(KeyError):
            table.get("missing")

    def test_comparison_table_empty_best_raises(self):
        with pytest.raises(ValueError):
            ComparisonTable().best_by_replication()

    def test_str_contains_rows(self):
        table = ComparisonTable(title="hello")
        table.add(quality_report(make_assignment([0, 1, 0, 1]), algorithm="alg"))
        text = str(table)
        assert "hello" in text and "alg" in text

    def test_compare_partitioners_runs_all(self, crawl_stream):
        table = compare_partitioners(
            [HashingPartitioner(4), GreedyPartitioner(4)], crawl_stream
        )
        assert {r.algorithm for r in table.reports} == {"hashing", "greedy"}

    def test_compare_respects_preferred_orders(self, crawl_stream):
        # greedy under its preferred random order avoids the BFS collapse
        table = compare_partitioners([GreedyPartitioner(8)], crawl_stream)
        assert table.get("greedy").relative_balance < 2.0

    def test_compare_without_preferred_orders(self, crawl_stream):
        table = compare_partitioners(
            [HashingPartitioner(4)], crawl_stream, use_preferred_orders=False
        )
        assert table.get("hashing").num_edges == crawl_stream.num_edges
