"""CLUGP chunk-size independence: the chunked three-pass pipeline must be
bit-identical to the retained per-edge reference path for every chunk size.

Covers the full pipeline (all three variants), each pass in isolation
(:class:`ClusteringState`, :class:`TransformState`, the vectorized game),
the distributed deployment, and the clustering invariants that the
boring/suspect decomposition must preserve (exact volume accounting and
the split-at-most-once guard; see DESIGN.md — ``volume <= V_max`` itself
is *not* an invariant of the guarded algorithm, full clusters keep
absorbing intra-cluster edges).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GameConfig
from repro.core.clustering import (
    ClusteringState,
    streaming_clustering,
    streaming_clustering_chunked,
)
from repro.core.cluster_graph import build_cluster_graph
from repro.core.distributed import distributed_clugp
from repro.core.game import ClusterPartitioningGame
from repro.core.transform import (
    TransformState,
    transform_partitions,
    transform_partitions_chunked,
)
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.partitioners.registry import make_partitioner

CLUGP_VARIANTS = ("clugp", "clugp-s", "clugp-g")


@pytest.fixture(scope="module")
def stream():
    graph = web_crawl_graph(
        600, avg_out_degree=8.0, host_size=25, intra_host_prob=0.85, seed=13
    )
    return EdgeStream.from_graph(graph)


def chunk_sizes(stream):
    return (1, 7, 1024, stream.num_edges)


def assert_clustering_equal(a, b):
    assert np.array_equal(a.cluster_of, b.cluster_of)
    assert np.array_equal(a.degree, b.degree)
    assert np.array_equal(a.volume, b.volume)
    assert np.array_equal(a.divided, b.divided)
    assert a.mirror_clusters == b.mirror_clusters
    assert a.num_clusters == b.num_clusters
    assert (a.splits, a.migrations, a.allocations) == (
        b.splits,
        b.migrations,
        b.allocations,
    )


class TestFullPipeline:
    @pytest.mark.parametrize("name", CLUGP_VARIANTS)
    def test_chunked_bit_identical_across_chunk_sizes(self, name, stream):
        reference = make_partitioner(name, 8, seed=3).partition_per_edge(stream)
        for cs in chunk_sizes(stream):
            chunked = make_partitioner(name, 8, seed=3).partition_chunked(
                stream, chunk_size=cs
            )
            assert np.array_equal(
                reference.edge_partition, chunked.edge_partition
            ), f"{name} diverged at chunk_size={cs}"

    @pytest.mark.parametrize("name", CLUGP_VARIANTS)
    def test_default_partition_matches_reference(self, name, stream):
        reference = make_partitioner(name, 8, seed=3).partition_per_edge(stream)
        default = make_partitioner(name, 8, seed=3).partition(stream)
        assert np.array_equal(reference.edge_partition, default.edge_partition)

    def test_chunk_protocol_exposes_pipeline_artifacts(self, stream):
        p = make_partitioner("clugp", 8, seed=3)
        p.partition_chunked(stream, chunk_size=101)
        assert p.last_clustering is not None
        assert p.last_cluster_graph is not None
        assert p.last_game_result is not None
        assert p.last_transform_stats is not None
        assert p.last_transform_stats.total() == stream.num_edges

    def test_chunk_protocol_empty_stream(self):
        empty = EdgeStream([], [], num_vertices=0)
        for name in CLUGP_VARIANTS:
            assignment = make_partitioner(name, 4).partition_chunked(empty)
            assert assignment.edge_partition.size == 0

    def test_stats_identical_between_paths(self, stream):
        ref = make_partitioner("clugp", 8, seed=3)
        ref.partition_per_edge(stream)
        chk = make_partitioner("clugp", 8, seed=3)
        chk.partition_chunked(stream, chunk_size=509)
        a, b = ref.last_transform_stats, chk.last_transform_stats
        assert (a.agreement, a.mirror_reuse, a.degree_cut, a.balance_spill) == (
            b.agreement,
            b.mirror_reuse,
            b.degree_cut,
            b.balance_spill,
        )
        assert_clustering_equal(ref.last_clustering, chk.last_clustering)


class TestClusteringState:
    @pytest.mark.parametrize("splitting", [True, False])
    def test_bit_identical_across_chunk_sizes(self, stream, splitting):
        vmax = max(1, stream.num_edges // 16)
        reference = streaming_clustering(stream, vmax, enable_splitting=splitting)
        for cs in chunk_sizes(stream):
            got = streaming_clustering_chunked(
                stream, vmax, enable_splitting=splitting, chunk_size=cs
            )
            assert_clustering_equal(reference, got)

    def test_invariant_volume_is_member_degree_sum(self, stream):
        # every allocation (+1 per endpoint), migration and split (+/- deg)
        # preserves vol(c) == sum of current member degrees exactly
        for cs in (7, 1024):
            result = streaming_clustering_chunked(
                stream, max(1, stream.num_edges // 16), chunk_size=cs
            )
            recomputed = np.zeros(result.num_clusters, dtype=np.int64)
            np.add.at(
                recomputed,
                result.cluster_of[result.cluster_of >= 0],
                result.degree[result.cluster_of >= 0],
            )
            assert np.array_equal(recomputed, result.volume)
            assert recomputed.sum() == 2 * stream.num_edges

    def test_invariant_split_at_most_once(self, stream):
        result = streaming_clustering_chunked(
            stream, max(1, stream.num_edges // 32), chunk_size=777
        )
        assert result.splits == int(result.divided.sum())
        for v, mirrors in result.mirror_clusters.items():
            assert result.divided[v]
            assert len(mirrors) == 1  # one mirror per divided vertex

    def test_no_splits_without_splitting(self, stream):
        result = streaming_clustering_chunked(
            stream, max(1, stream.num_edges // 32), enable_splitting=False,
            chunk_size=777,
        )
        assert result.splits == 0
        assert not result.divided.any()
        assert not result.mirror_clusters

    def test_ingest_after_finalize_rejected(self):
        state = ClusteringState(4, 10)
        state.ingest(np.array([[0, 1]], dtype=np.int64))
        state.finalize()
        with pytest.raises(RuntimeError):
            state.ingest(np.array([[1, 2]], dtype=np.int64))

    def test_members_groupby_matches_loop(self, stream):
        result = streaming_clustering(stream, max(1, stream.num_edges // 16))
        members = result.members()
        expected = {}
        for v, c in enumerate(result.cluster_of.tolist()):
            if c >= 0:
                expected.setdefault(c, []).append(v)
        assert members == expected


class TestTransformState:
    @pytest.mark.parametrize("tau", [1.0, 1.05, 1.5])
    def test_bit_identical_across_chunk_sizes(self, stream, tau):
        # tau=1.0 forces the load cap to bite early, exercising the exact
        # prefix-commit cut and the spill-pointer scalar tail heavily
        clustering = streaming_clustering(stream, max(1, stream.num_edges // 8))
        cg = build_cluster_graph(stream, clustering)
        game = ClusterPartitioningGame(cg, 4, GameConfig(seed=0)).run()
        ref, ref_stats = transform_partitions(
            stream, clustering, game.assignment, 4, imbalance_factor=tau
        )
        for cs in chunk_sizes(stream):
            got, stats = transform_partitions_chunked(
                stream, clustering, game.assignment, 4,
                imbalance_factor=tau, chunk_size=cs,
            )
            assert np.array_equal(ref, got), f"diverged at chunk_size={cs}"
            assert (
                stats.agreement,
                stats.mirror_reuse,
                stats.degree_cut,
                stats.balance_spill,
            ) == (
                ref_stats.agreement,
                ref_stats.mirror_reuse,
                ref_stats.degree_cut,
                ref_stats.balance_spill,
            )

    def test_load_cap_strictly_enforced(self, stream):
        clustering = streaming_clustering(stream, max(1, stream.num_edges // 8))
        cg = build_cluster_graph(stream, clustering)
        game = ClusterPartitioningGame(cg, 4, GameConfig(seed=0)).run()
        state = TransformState(
            clustering, game.assignment, 4,
            num_edges=stream.num_edges, num_vertices=stream.num_vertices,
            imbalance_factor=1.0,
        )
        parts = [state.ingest(c) for c in stream.chunks(257)]
        loads = np.bincount(np.concatenate(parts), minlength=4)
        assert loads.max() <= state.load_cap

    def test_rejects_bad_inputs(self, stream):
        clustering = streaming_clustering(stream, max(1, stream.num_edges // 8))
        with pytest.raises(ValueError):
            TransformState(
                clustering,
                np.zeros(clustering.num_clusters + 1, dtype=np.int64),
                4,
                num_edges=stream.num_edges,
                num_vertices=stream.num_vertices,
            )
        with pytest.raises(ValueError):
            TransformState(
                clustering,
                np.zeros(clustering.num_clusters, dtype=np.int64),
                4,
                num_edges=stream.num_edges,
                num_vertices=stream.num_vertices,
                imbalance_factor=0.5,
            )


class TestGameVectorization:
    def test_vectorized_matches_reference_scorer(self, stream):
        clustering = streaming_clustering(stream, max(1, stream.num_edges // 16))
        cg = build_cluster_graph(stream, clustering)
        for seed in range(3):
            ref = ClusterPartitioningGame(
                cg, 8, GameConfig(seed=seed), vectorized=False
            ).run()
            vec = ClusterPartitioningGame(
                cg, 8, GameConfig(seed=seed), vectorized=True
            ).run()
            assert np.array_equal(ref.assignment, vec.assignment)
            assert (ref.rounds, ref.moves) == (vec.rounds, vec.moves)
            assert ref.potential_trace == vec.potential_trace


class TestDistributedChunked:
    def test_nodes_run_chunked_pipeline(self, stream):
        a = distributed_clugp(
            stream, 4, num_nodes=3, seed=5, parallel_nodes=False
        )
        b = distributed_clugp(
            stream, 4, num_nodes=3, seed=5, parallel_nodes=False, chunk_size=211
        )
        assert np.array_equal(
            a.assignment.edge_partition, b.assignment.edge_partition
        )
        assert len(a.nodes) == 3


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=100
    ),
    vmax=st.integers(1, 30),
    split=st.booleans(),
    chunk_size=st.sampled_from([1, 3, 7, 64]),
)
def test_property_chunked_clustering_bit_identical(edges, vmax, split, chunk_size):
    src, dst = zip(*edges)
    s = EdgeStream(np.asarray(src), np.asarray(dst), max(max(src), max(dst)) + 1)
    reference = streaming_clustering(s, vmax, enable_splitting=split)
    got = streaming_clustering_chunked(
        s, vmax, enable_splitting=split, chunk_size=chunk_size
    )
    assert_clustering_equal(reference, got)
