"""Tests for the deeper partition diagnostics."""

import numpy as np
import pytest

from repro.analysis.partition_stats import (
    communication_matrix,
    mirror_distribution,
    partition_summaries,
    vertex_balance,
)
from repro.graph.stream import EdgeStream
from repro.partitioners import HashingPartitioner
from repro.partitioners.base import PartitionAssignment
from repro.core.partitioner import ClugpPartitioner


def make_assignment():
    stream = EdgeStream([0, 1, 2, 0], [1, 2, 3, 3], num_vertices=4)
    return PartitionAssignment(stream, [0, 0, 1, 1], num_partitions=2)


class TestCommunicationMatrix:
    def test_diagonal_zero(self):
        matrix = communication_matrix(make_assignment())
        assert (np.diag(matrix) == 0).all()

    def test_counts_match_mirrors(self):
        a = make_assignment()
        matrix = communication_matrix(a)
        counts = a.vertex_partition_counts()
        total_mirrors = int((counts[counts > 0] - 1).sum())
        assert matrix.sum() == total_mirrors

    def test_single_partition_silent(self):
        stream = EdgeStream([0, 1], [1, 2], num_vertices=3)
        a = PartitionAssignment(stream, [0, 0], num_partitions=1)
        assert communication_matrix(a).sum() == 0

    def test_lower_rf_less_traffic(self, crawl_stream):
        bad = HashingPartitioner(8).partition(crawl_stream)
        good = ClugpPartitioner(8).partition(crawl_stream)
        assert communication_matrix(good).sum() < communication_matrix(bad).sum()


class TestVertexBalance:
    def test_balanced_case(self):
        stream = EdgeStream([0, 2], [1, 3], num_vertices=4)
        a = PartitionAssignment(stream, [0, 1], num_partitions=2)
        assert vertex_balance(a) == pytest.approx(1.0)

    def test_skewed_case(self):
        stream = EdgeStream([0, 1, 2], [1, 2, 3], num_vertices=4)
        a = PartitionAssignment(stream, [0, 0, 0], num_partitions=2)
        assert vertex_balance(a) == pytest.approx(2.0)

    def test_empty(self):
        stream = EdgeStream([], [], num_vertices=0)
        a = PartitionAssignment(stream, [], num_partitions=2)
        assert vertex_balance(a) == 1.0


class TestMirrorDistribution:
    def test_histogram_sums_to_active_vertices(self):
        a = make_assignment()
        hist = mirror_distribution(a)
        assert hist.sum() == 4
        assert hist[1] == 2 and hist[2] == 2

    def test_no_entry_beyond_k(self, crawl_stream):
        a = HashingPartitioner(4).partition(crawl_stream)
        hist = mirror_distribution(a)
        assert hist.shape == (5,)
        assert hist[0] == 0  # index 0 = inactive vertices, excluded


class TestPartitionSummaries:
    def test_rows_consistent(self):
        a = make_assignment()
        rows = partition_summaries(a)
        assert len(rows) == 2
        assert sum(r.edges for r in rows) == 4
        assert sum(r.masters for r in rows) == 4
        total_replicas = sum(r.replicas for r in rows)
        counts = a.vertex_partition_counts()
        assert total_replicas == counts.sum()

    def test_replicas_property(self):
        a = make_assignment()
        row = partition_summaries(a)[0]
        assert row.replicas == row.masters + row.mirrors
