"""Chunked ingestion must be bit-identical to per-edge streaming.

The chunked numpy path, the reference per-edge loop, and the default
``partition()`` entry point are three implementations of the same
algorithm; for every registered partitioner they must agree exactly —
including across awkward chunk boundaries (chunk 1, primes, chunk larger
than the stream, and chunks that straddle Mint's batch size).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.partitioners.dbh import DBHPartitioner
from repro.partitioners.mint import MintPartitioner
from repro.partitioners.registry import PARTITIONERS, make_partitioner

ALL_NAMES = sorted(PARTITIONERS)
#: partitioners with a native chunk protocol (single-pass commit-as-you-go
#: plus the deferring multi-pass CLUGP variants)
CHUNKED_NAMES = [
    "hashing",
    "dbh",
    "grid",
    "greedy",
    "hdrf",
    "mint",
    "clugp",
    "clugp-s",
    "clugp-g",
]


@pytest.fixture(scope="module")
def stream():
    graph = web_crawl_graph(
        500, avg_out_degree=7.0, host_size=20, intra_host_prob=0.85, seed=21
    )
    return EdgeStream.from_graph(graph, order="random", seed=4)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_every_registered_partitioner_chunked_equals_per_edge(name, stream):
    reference = make_partitioner(name, 8, seed=1).partition_per_edge(stream)
    chunked = make_partitioner(name, 8, seed=1).partition_chunked(stream, chunk_size=509)
    default = make_partitioner(name, 8, seed=1).partition(stream)
    assert np.array_equal(reference.edge_partition, chunked.edge_partition)
    assert np.array_equal(reference.edge_partition, default.edge_partition)


@pytest.mark.parametrize("name", CHUNKED_NAMES)
@pytest.mark.parametrize("chunk_size", [1, 13, 1000, 10**9])
def test_chunk_boundaries_do_not_change_assignments(name, chunk_size, stream):
    reference = make_partitioner(name, 4, seed=2).partition(stream)
    chunked = make_partitioner(name, 4, seed=2).partition_chunked(
        stream, chunk_size=chunk_size
    )
    assert np.array_equal(reference.edge_partition, chunked.edge_partition)


def test_supports_chunks_flags():
    for name in CHUNKED_NAMES:
        assert make_partitioner(name, 2).supports_chunks
    assert not make_partitioner("minimetis", 2).supports_chunks


def test_mint_chunks_straddling_batches(stream):
    # chunk size deliberately coprime with the batch size so games span
    # chunk boundaries and the carry buffer is exercised
    a = MintPartitioner(4, seed=0, batch_size=256).partition(stream)
    b = MintPartitioner(4, seed=0, batch_size=256).partition_chunked(
        stream, chunk_size=101
    )
    assert np.array_equal(a.edge_partition, b.edge_partition)


def test_dbh_exact_degrees_chunked(stream):
    a = DBHPartitioner(8, exact_degrees=True).partition(stream)
    b = DBHPartitioner(8, exact_degrees=True).partition_chunked(stream, chunk_size=77)
    c = DBHPartitioner(8, exact_degrees=True).partition_per_edge(stream)
    assert np.array_equal(a.edge_partition, b.edge_partition)
    assert np.array_equal(a.edge_partition, c.edge_partition)


def test_chunked_empty_stream():
    empty = EdgeStream([], [], num_vertices=0)
    for name in CHUNKED_NAMES:
        assignment = make_partitioner(name, 4).partition_chunked(empty)
        assert assignment.edge_partition.size == 0


def test_chunked_self_loops_and_parallel_edges():
    stream = EdgeStream([0, 1, 0, 0, 1, 1], [0, 1, 1, 1, 0, 1], num_vertices=2)
    for name in CHUNKED_NAMES:
        a = make_partitioner(name, 3, seed=5).partition_per_edge(stream)
        b = make_partitioner(name, 3, seed=5).partition_chunked(stream, chunk_size=2)
        assert np.array_equal(a.edge_partition, b.edge_partition), name


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=80
    ),
    chunk_size=st.integers(1, 90),
    k=st.integers(1, 6),
    name=st.sampled_from(CHUNKED_NAMES),
)
def test_property_chunked_matches_per_edge(edges, chunk_size, k, name):
    graph = DiGraph.from_edges(edges)
    stream = EdgeStream.from_graph(graph)
    reference = make_partitioner(name, k, seed=3).partition_per_edge(stream)
    chunked = make_partitioner(name, k, seed=3).partition_chunked(
        stream, chunk_size=chunk_size
    )
    assert np.array_equal(reference.edge_partition, chunked.edge_partition)


class TestStreamChunks:
    def test_shapes_and_dtype(self):
        stream = EdgeStream([0, 1, 2, 3, 4], [1, 2, 3, 4, 0], num_vertices=5)
        chunks = list(stream.chunks(2))
        assert [c.shape for c in chunks] == [(2, 2), (2, 2), (1, 2)]
        assert all(c.dtype == np.int64 for c in chunks)

    def test_chunks_cover_stream_in_order(self):
        stream = EdgeStream([3, 1, 4], [0, 2, 2], num_vertices=5)
        rebuilt = np.concatenate(list(stream.chunks(2)))
        assert np.array_equal(rebuilt[:, 0], stream.src)
        assert np.array_equal(rebuilt[:, 1], stream.dst)

    def test_rejects_nonpositive_chunk_size(self):
        stream = EdgeStream([0], [1], num_vertices=2)
        with pytest.raises(ValueError):
            list(stream.chunks(0))

    def test_empty_stream_yields_no_chunks(self):
        assert list(EdgeStream([], [], num_vertices=0).chunks(4)) == []

    def test_edge_array_is_transient_copy(self):
        stream = EdgeStream([0, 1], [1, 0], num_vertices=2)
        arr = stream.edge_array()
        assert arr.tolist() == [[0, 1], [1, 0]]
        arr[0, 0] = 9  # mutating the copy must not touch the stream
        assert stream.src[0] == 0
