"""``game_impl="jit"`` must be bit-identical to the numpy game engines.

PR 9 compiles the whole pass-2 best-response round into one
:mod:`repro.kernels` call (``game_round``) with incremental
delta-scoring and O(1) potential maintenance.  DESIGN.md §10 argues
bit-identity holds by construction — the kernel transliterates the
numpy cost row op-for-op, first-minimum argmin, no FMA contraction,
and every quantity it folds incrementally (adjacency table, loads,
``S = sum(loads^2)``, cut) is integer-valued below ``2**53``, so
"incremental" and "recomputed" are the *same* float64.  This module is
the enforcement: three-way identity (reference / fast / jit) on
assignments, move sequences, round counts and full potential traces
across seeds and k; warm starts; frontier-restricted active masks; the
forced-tiny adjacency-table cap (`adj is None` on-demand-row path);
the maintained-potential == recomputed-potential gate; the vectorized
Nash check; and the batched cost-row primitive behind
``parallel_game``.

The plain-Python kernel backend tests always run (no compiler
needed); everything touching a compiled backend is skip-marked
cleanly, mirroring ``tests/test_kernels.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.config import ClugpConfig, GameConfig
from repro.core import game as game_mod
from repro.core.cluster_graph import build_cluster_graph
from repro.core.clustering import streaming_clustering
from repro.core.game import ClusterPartitioningGame
from repro.core.parallel import parallel_game
from repro.graph.digraph import DiGraph
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream

needs_compiled = pytest.mark.skipif(
    not kernels.available(), reason="no compiled kernel backend (numba or cc)"
)


def _identity_backend_params():
    return [
        pytest.param("python", id="python"),
        pytest.param("auto", id="compiled", marks=needs_compiled),
    ]


@pytest.fixture(scope="module")
def cluster_graph():
    g = web_crawl_graph(600, avg_out_degree=8, host_size=30, seed=9)
    s = EdgeStream.from_graph(g)
    clustering = streaming_clustering(s, max_volume=s.num_edges // 16)
    return build_cluster_graph(s, clustering)


def _engines(backend):
    """(label, ctor kwargs) for the three engines under test."""
    return [
        ("reference", dict(vectorized=False)),
        ("fast", dict()),
        (
            "jit",
            dict(
                config_extra=dict(game_impl="jit", kernel_backend=backend)
            ),
        ),
    ]


def _run_engine(
    cluster_graph,
    k,
    seed,
    *,
    vectorized=True,
    config_extra=None,
    initial_assignment=None,
    active=None,
):
    cfg = GameConfig(seed=seed, **(config_extra or {}))
    game = ClusterPartitioningGame(
        cluster_graph, k, cfg,
        vectorized=vectorized, initial_assignment=initial_assignment,
    )
    result = game.run(active=active, record_moves=True)
    return game, result


def _assert_identical(a, b, label):
    assert np.array_equal(a.assignment, b.assignment), label
    assert a.rounds == b.rounds, label
    assert a.moves == b.moves, label
    assert a.converged == b.converged, label
    assert a.move_log == b.move_log, label
    # potential traces must match *bit for bit*: the kernel's O(1)
    # maintained potential uses the same IEEE op sequence as potential()
    assert a.potential_trace == b.potential_trace, label


# --------------------------------------------------------------------- #
# config plumbing (always runs)
# --------------------------------------------------------------------- #


def test_game_config_validates_impl_fields():
    with pytest.raises(ValueError, match="game_impl"):
        GameConfig(game_impl="vectorized")
    with pytest.raises(ValueError, match="kernel_backend"):
        GameConfig(kernel_backend="fortran")
    cfg = GameConfig(game_impl="jit", kernel_backend="python")
    assert cfg.game_impl == "jit"


def test_clugp_config_syncs_kernel_backend_into_game():
    cfg = ClugpConfig(num_partitions=4, kernel_backend="python")
    assert cfg.game.kernel_backend == "python"
    # an explicitly pinned nested backend wins over the outer knob
    pinned = ClugpConfig(
        num_partitions=4,
        kernel_backend="python",
        game=GameConfig(kernel_backend="none"),
    )
    assert pinned.game.kernel_backend == "none"
    # round-trips through the dict form
    again = ClugpConfig.from_dict(cfg.to_dict())
    assert again.game.kernel_backend == "python"


def test_jit_with_no_backend_degrades_to_fast(cluster_graph):
    _, fast = _run_engine(cluster_graph, 8, seed=0)
    game, degraded = _run_engine(
        cluster_graph, 8, seed=0,
        config_extra=dict(game_impl="jit", kernel_backend="none"),
    )
    assert game.game_impl == "fast"  # degraded, not broken
    _assert_identical(fast, degraded, "jit/none vs fast")


def test_legacy_vectorized_false_forces_reference(cluster_graph):
    game = ClusterPartitioningGame(
        cluster_graph, 4, GameConfig(seed=0, game_impl="jit",
                                     kernel_backend="python"),
        vectorized=False,
    )
    assert game.game_impl == "reference"
    assert game._backend is None


# --------------------------------------------------------------------- #
# three-way identity: reference == fast == jit
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", _identity_backend_params())
@pytest.mark.parametrize("k", [2, 8, 100, 1024])
def test_three_way_identity_across_k(cluster_graph, k, backend):
    for seed in (0, 1, 2):
        runs = {
            label: _run_engine(cluster_graph, k, seed, **kwargs)[1]
            for label, kwargs in (
                ("reference", dict(vectorized=False)),
                ("fast", dict()),
                ("jit", dict(config_extra=dict(
                    game_impl="jit", kernel_backend=backend))),
            )
        }
        _assert_identical(runs["reference"], runs["fast"], f"k={k} s={seed}")
        _assert_identical(runs["fast"], runs["jit"], f"k={k} s={seed}")


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_warm_start_identity(cluster_graph, backend):
    k = 8
    # a mid-descent warm start: random init from a different seed
    rng = np.random.default_rng(42)
    init = rng.integers(0, k, size=cluster_graph.num_clusters).astype(np.int64)
    _, fast = _run_engine(cluster_graph, k, 0, initial_assignment=init)
    _, jit = _run_engine(
        cluster_graph, k, 0, initial_assignment=init,
        config_extra=dict(game_impl="jit", kernel_backend=backend),
    )
    _assert_identical(fast, jit, "warm start")
    # an equilibrium warm start must be a fixed point of the kernel too
    _, again = _run_engine(
        cluster_graph, k, 0, initial_assignment=fast.assignment,
        config_extra=dict(game_impl="jit", kernel_backend=backend),
    )
    assert again.moves == 0 and again.rounds == 1


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_active_mask_identity(cluster_graph, backend):
    k = 8
    m = cluster_graph.num_clusters
    rng = np.random.default_rng(5)
    init = rng.integers(0, k, size=m).astype(np.int64)
    active = rng.random(m) < 0.4
    game_fast, fast = _run_engine(
        cluster_graph, k, 0, initial_assignment=init, active=active
    )
    game_jit, jit = _run_engine(
        cluster_graph, k, 0, initial_assignment=init, active=active,
        config_extra=dict(game_impl="jit", kernel_backend=backend),
    )
    _assert_identical(fast, jit, "active mask")
    # frozen players really were frozen, and the frontier settled
    frozen = ~active
    assert np.array_equal(jit.assignment[frozen], init[frozen])
    assert game_jit.is_nash_equilibrium(active=active)
    assert game_fast.is_nash_equilibrium(active=active)


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_empty_and_full_active_masks(cluster_graph, backend):
    k = 4
    m = cluster_graph.num_clusters
    extra = dict(game_impl="jit", kernel_backend=backend)
    init = np.zeros(m, dtype=np.int64)
    _, noop = _run_engine(
        cluster_graph, k, 0, initial_assignment=init,
        active=np.zeros(m, dtype=bool), config_extra=extra,
    )
    assert noop.moves == 0
    assert np.array_equal(noop.assignment, init)
    _, full = _run_engine(
        cluster_graph, k, 0, active=np.ones(m, dtype=bool), config_extra=extra
    )
    _, plain = _run_engine(cluster_graph, k, 0, config_extra=extra)
    _assert_identical(full, plain, "all-true mask == no mask")


# --------------------------------------------------------------------- #
# incremental potential == recomputed potential
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_maintained_potential_equals_recomputed(cluster_graph, backend):
    for k, seed in ((2, 0), (8, 1), (100, 2)):
        game, result = _run_engine(
            cluster_graph, k, seed,
            config_extra=dict(game_impl="jit", kernel_backend=backend),
        )
        # the last trace entry came from the kernel's O(1) maintained
        # (S, C); potential() recomputes from scratch — exact equality,
        # not approx: both are the same IEEE expression on the same
        # integer-valued doubles
        assert result.potential_trace[-1] == game.potential()


def test_fast_engine_trace_matches_recomputed(cluster_graph):
    # the numpy engine recomputes per round — anchor for the gate above
    game, result = _run_engine(cluster_graph, 8, 1)
    assert result.potential_trace[-1] == game.potential()


# --------------------------------------------------------------------- #
# forced-tiny adjacency-table cap: the `adj is None` on-demand-row path
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_tiny_table_cap_unifies_paths(cluster_graph, backend, monkeypatch):
    k = 8
    with_table = {
        label: _run_engine(cluster_graph, k, 0, **kwargs)[1]
        for label, kwargs in (
            ("fast", dict()),
            ("jit", dict(config_extra=dict(
                game_impl="jit", kernel_backend=backend))),
        )
    }
    # force every game over the cap: the table no longer fits, both
    # engines rebuild each mover's row on demand from the CSR view
    monkeypatch.setattr(game_mod, "_ADJ_TABLE_MAX_CELLS", 1)
    game = ClusterPartitioningGame(cluster_graph, k, GameConfig(seed=0))
    assert game._build_adj_table() is None  # the cap really engaged
    no_table_fast = _run_engine(cluster_graph, k, 0)[1]
    no_table_jit = _run_engine(
        cluster_graph, k, 0,
        config_extra=dict(game_impl="jit", kernel_backend=backend),
    )[1]
    _assert_identical(with_table["fast"], no_table_fast, "fast: cap")
    _assert_identical(with_table["jit"], no_table_jit, "jit: cap")
    _assert_identical(no_table_fast, no_table_jit, "fast == jit at cap")


# --------------------------------------------------------------------- #
# batched cost rows + the vectorized Nash check + parallel_game
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_batch_cost_matrix_kernel_matches_numpy(cluster_graph, backend):
    k = 8
    numpy_game = ClusterPartitioningGame(cluster_graph, k, GameConfig(seed=3))
    jit_game = ClusterPartitioningGame(
        cluster_graph, k,
        GameConfig(seed=3, game_impl="jit", kernel_backend=backend),
    )
    m = cluster_graph.num_clusters
    rng = np.random.default_rng(11)
    assignment = rng.integers(0, k, size=m).astype(np.int64)
    loads = np.bincount(
        assignment, weights=cluster_graph.internal.astype(np.float64),
        minlength=k,
    )
    for start, stop in ((0, m), (m // 3, 2 * m // 3), (m - 1, m), (5, 5)):
        a = numpy_game.batch_cost_matrix(start, stop, assignment, loads)
        b = jit_game.batch_cost_matrix(start, stop, assignment, loads)
        assert a.shape == b.shape == (stop - start, k)
        assert np.array_equal(a, b)  # bit-identical, not approx


def test_vectorized_nash_check_matches_reference_loop(cluster_graph):
    k = 4
    m = cluster_graph.num_clusters
    rng = np.random.default_rng(2)
    for trial in range(3):
        init = rng.integers(0, k, size=m).astype(np.int64)
        vec = ClusterPartitioningGame(
            cluster_graph, k, initial_assignment=init
        )
        ref = ClusterPartitioningGame(
            cluster_graph, k, vectorized=False, initial_assignment=init
        )
        assert vec.is_nash_equilibrium() == ref.is_nash_equilibrium()
        active = rng.random(m) < 0.3
        assert vec.is_nash_equilibrium(active=active) == ref.is_nash_equilibrium(
            active=active
        )
    # after convergence both must agree it *is* an equilibrium
    game, result = _run_engine(cluster_graph, k, 0)
    assert result.converged and game.is_nash_equilibrium()


def test_vectorized_nash_check_block_boundaries(cluster_graph, monkeypatch):
    # tiny blocks exercise the block loop + early-exit on masked blocks
    k = 4
    m = cluster_graph.num_clusters
    rng = np.random.default_rng(4)
    init = rng.integers(0, k, size=m).astype(np.int64)
    game = ClusterPartitioningGame(cluster_graph, k, initial_assignment=init)
    ref = ClusterPartitioningGame(
        cluster_graph, k, vectorized=False, initial_assignment=init
    )
    monkeypatch.setattr(ClusterPartitioningGame, "_NASH_BLOCK", 7)
    active = np.zeros(m, dtype=bool)
    active[m // 2 :] = True  # whole leading blocks all-masked
    assert game.is_nash_equilibrium() == ref.is_nash_equilibrium()
    assert game.is_nash_equilibrium(active=active) == ref.is_nash_equilibrium(
        active=active
    )


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_parallel_game_jit_matches_fast(cluster_graph, backend):
    k = 8
    fast = parallel_game(cluster_graph, k, GameConfig(seed=0))
    jit = parallel_game(
        cluster_graph, k,
        GameConfig(seed=0, game_impl="jit", kernel_backend=backend),
    )
    assert np.array_equal(fast.assignment, jit.assignment)
    assert fast.rounds == jit.rounds
    assert fast.moves == jit.moves
    assert fast.potential_trace == jit.potential_trace


# --------------------------------------------------------------------- #
# property tests: random web-crawl-ish streams
# --------------------------------------------------------------------- #


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 23), st.integers(0, 23)),
        min_size=3, max_size=80,
    ),
    k=st.integers(2, 6),
    seed=st.integers(0, 50),
)
def test_property_three_way_identity(edges, k, seed):
    s = EdgeStream.from_graph(DiGraph.from_edges(edges))
    clustering = streaming_clustering(s, max_volume=max(1, s.num_edges // 2))
    cg = build_cluster_graph(s, clustering)
    reference = _run_engine(cg, k, seed, vectorized=False)[1]
    fast = _run_engine(cg, k, seed)[1]
    jit_game, jit = _run_engine(
        cg, k, seed,
        config_extra=dict(game_impl="jit", kernel_backend="python"),
    )
    _assert_identical(reference, fast, "property: reference vs fast")
    _assert_identical(fast, jit, "property: fast vs jit")
    assert jit.potential_trace[-1] == jit_game.potential()
    assert jit_game.is_nash_equilibrium() or not jit.converged


@settings(max_examples=10, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=3, max_size=50,
    ),
    k=st.integers(2, 4),
    frontier=st.integers(0, 2**15 - 1),
)
def test_property_active_mask_identity(edges, k, frontier):
    s = EdgeStream.from_graph(DiGraph.from_edges(edges))
    clustering = streaming_clustering(s, max_volume=max(1, s.num_edges // 2))
    cg = build_cluster_graph(s, clustering)
    m = cg.num_clusters
    active = np.array([(frontier >> (i % 15)) & 1 == 1 for i in range(m)])
    rng = np.random.default_rng(0)
    init = rng.integers(0, k, size=m).astype(np.int64)
    fast = _run_engine(
        cg, k, 0, initial_assignment=init, active=active
    )[1]
    jit = _run_engine(
        cg, k, 0, initial_assignment=init, active=active,
        config_extra=dict(game_impl="jit", kernel_backend="python"),
    )[1]
    _assert_identical(fast, jit, "property: active mask")
    assert np.array_equal(jit.assignment[~active], init[~active])
