"""``chunk_impl="jit"`` must be bit-identical to the numpy oracles.

The :mod:`repro.kernels` backends re-implement the three scalar decision
cores (HDRF, greedy, CLUGP pass-1 replay + pass-3 transform tail) in
compiled code.  DESIGN.md §8 argues bit-identity holds by construction:
the kernels transliterate the per-edge reference semantics — same
operation order, same IEEE doubles for HDRF, integer-only state
everywhere else.  This module is the enforcement: three-way identity
(jit == fast == reference) at awkward chunk sizes, a k=100 multiword
bitmask corner, collision-heavy hypothesis streams, the spill-heavy
tau=1.0 transform, and the graceful-degradation contract when no
backend resolves.

The plain-Python backend tests always run (no compiler needed), so the
kernel glue is exercised even on machines where :func:`kernels.available`
is False; everything touching a compiled backend is skip-marked cleanly.
"""

import logging

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.config import ClugpConfig
from repro.core.clustering import (
    streaming_clustering,
    streaming_clustering_chunked,
)
from repro.core.partitioner import ClugpPartitioner
from repro.core.transform import (
    TransformState,
    transform_partitions,
    transform_partitions_chunked,
)
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.partitioners.registry import make_partitioner

needs_compiled = pytest.mark.skipif(
    not kernels.available(), reason="no compiled kernel backend (numba or cc)"
)

CHUNK_SIZES = [1, 7, 1024, 10**9]  # 10**9 > |E|: one whole-stream chunk


@pytest.fixture(scope="module")
def stream():
    graph = web_crawl_graph(
        400, avg_out_degree=6.0, host_size=16, intra_host_prob=0.85, seed=11
    )
    return EdgeStream.from_graph(graph, order="random", seed=3)


def _parts(name, stream, k, chunk_size, **kwargs):
    p = make_partitioner(name, k, seed=1, **kwargs)
    return p.partition_chunked(stream, chunk_size=chunk_size).edge_partition


# --------------------------------------------------------------------- #
# probe / resolution API
# --------------------------------------------------------------------- #


def test_backend_names_and_probe_never_raise():
    # import-safe contract: probing must work on any machine
    assert kernels.available() in (True, False)
    for name in kernels.BACKEND_NAMES:
        backend = kernels.get_backend(name)
        assert backend is None or hasattr(backend, "hdrf_chunk")


def test_get_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.get_backend("fortran")


def test_none_backend_resolves_to_none():
    assert kernels.get_backend("none") is None
    assert kernels.backend_name("none") is None


def test_python_backend_always_available():
    backend = kernels.get_backend("python")
    assert backend is not None and backend.name == "python"


def test_env_override_respected(monkeypatch):
    monkeypatch.setenv("CLUGP_KERNEL_BACKEND", "none")
    assert kernels.get_backend("auto") is None
    monkeypatch.setenv("CLUGP_KERNEL_BACKEND", "python")
    assert kernels.backend_name() == "python"
    monkeypatch.setenv("CLUGP_KERNEL_BACKEND", "cobol")
    with pytest.raises(ValueError, match="CLUGP_KERNEL_BACKEND"):
        kernels.get_backend("auto")


def test_warmup_is_idempotent():
    first = kernels.warmup("python")
    second = kernels.warmup("python")
    assert first == second == "python"


@needs_compiled
def test_warmup_resolves_compiled_backend(monkeypatch):
    monkeypatch.delenv("CLUGP_KERNEL_BACKEND", raising=False)
    assert kernels.warmup() in ("numba", "cc")


def test_popcount_matches_python_bit_count():
    rng = np.random.default_rng(0)
    words = rng.integers(0, 2**63, size=37, dtype=np.int64).view(np.uint64)
    assert kernels.popcount(words) == sum(int(w).bit_count() for w in words)


def test_config_validates_kernel_fields():
    with pytest.raises(ValueError, match="chunk_impl"):
        ClugpConfig(chunk_impl="vectorized")
    with pytest.raises(ValueError, match="kernel_backend"):
        ClugpConfig(kernel_backend="fortran")
    cfg = ClugpConfig(chunk_impl="jit", kernel_backend="cc")
    assert cfg.chunk_impl == "jit"


# --------------------------------------------------------------------- #
# graceful degradation (always runs)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", ["hdrf", "greedy"])
def test_jit_with_no_backend_degrades_to_fast(name, stream):
    fast = _parts(name, stream, 8, 997)
    degraded = _parts(
        name, stream, 8, 997, chunk_impl="jit", kernel_backend="none"
    )
    assert np.array_equal(fast, degraded)


def test_clugp_jit_with_no_backend_degrades_to_fast(stream):
    fast = _parts("clugp", stream, 8, 997)
    degraded = _parts(
        "clugp", stream, 8, 997, chunk_impl="jit", kernel_backend="none"
    )
    assert np.array_equal(fast, degraded)


# --------------------------------------------------------------------- #
# three-way bit-identity: jit == fast == reference
# --------------------------------------------------------------------- #


def _identity_backend_params():
    params = [pytest.param("python", id="python")]
    params.append(
        pytest.param("auto", id="compiled", marks=needs_compiled)
    )
    return params


@pytest.mark.parametrize("backend", _identity_backend_params())
@pytest.mark.parametrize("name", ["hdrf", "greedy"])
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_streaming_three_way_identity(name, chunk_size, backend, stream):
    reference = _parts(name, stream, 8, chunk_size, chunk_impl="reference")
    fast = _parts(name, stream, 8, chunk_size)
    jit = _parts(
        name, stream, 8, chunk_size, chunk_impl="jit", kernel_backend=backend
    )
    assert np.array_equal(reference, fast)
    assert np.array_equal(fast, jit)


@pytest.mark.parametrize("backend", _identity_backend_params())
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_clugp_end_to_end_identity(chunk_size, backend, stream):
    fast = _parts("clugp", stream, 8, chunk_size)
    jit = _parts(
        "clugp", stream, 8, chunk_size, chunk_impl="jit", kernel_backend=backend
    )
    assert np.array_equal(fast, jit)


@pytest.mark.parametrize("backend", _identity_backend_params())
@pytest.mark.parametrize("name", ["hdrf", "greedy"])
def test_multiword_bitmask_k100(name, backend, stream):
    # k=100 needs two uint64 words per vertex row — the multiword corner
    reference = _parts(name, stream, 100, 1024, chunk_impl="reference")
    jit = _parts(
        name, stream, 100, 1024, chunk_impl="jit", kernel_backend=backend
    )
    assert np.array_equal(reference, jit)


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_replica_accounting_matches(backend, stream):
    # finish_chunks must report the same replica table size in every mode
    for name in ("hdrf", "greedy"):
        fast = make_partitioner(name, 8, seed=1)
        fast.partition_chunked(stream, chunk_size=1024)
        jit = make_partitioner(
            name, 8, seed=1, chunk_impl="jit", kernel_backend=backend
        )
        jit.partition_chunked(stream, chunk_size=1024)
        assert fast._replica_entries == jit._replica_entries


# --------------------------------------------------------------------- #
# clustering replay (pass 1)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", _identity_backend_params())
@pytest.mark.parametrize("enable_splitting", [True, False])
def test_clustering_state_identity(backend, enable_splitting, stream):
    vmax = max(1, stream.num_edges // 8)
    oracle = streaming_clustering(
        stream, vmax, enable_splitting=enable_splitting
    )
    jit = streaming_clustering_chunked(
        stream,
        vmax,
        enable_splitting=enable_splitting,
        chunk_size=611,
        chunk_impl="jit",
        kernel_backend=backend,
    )
    assert np.array_equal(oracle.cluster_of, jit.cluster_of)
    assert np.array_equal(oracle.volume, jit.volume)
    assert oracle.mirror_clusters == jit.mirror_clusters
    assert (oracle.splits, oracle.migrations, oracle.allocations) == (
        jit.splits, jit.migrations, jit.allocations,
    )


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_clustering_tiny_vmax_splitting_storm(backend, stream):
    # vmax=5 forces constant splitting/migration — the worst-case replay
    oracle = streaming_clustering(stream, 5)
    jit = streaming_clustering_chunked(
        stream, 5, chunk_size=13, chunk_impl="jit", kernel_backend=backend
    )
    assert np.array_equal(oracle.cluster_of, jit.cluster_of)
    assert oracle.splits == jit.splits


# --------------------------------------------------------------------- #
# transform tail (pass 3)
# --------------------------------------------------------------------- #


def _clustered(stream, k):
    vmax = max(1, stream.num_edges // k)
    clustering = streaming_clustering(stream, vmax)
    rng = np.random.default_rng(7)
    cluster_partition = rng.integers(0, k, size=clustering.num_clusters)
    return clustering, cluster_partition.astype(np.int64)


@pytest.mark.parametrize("backend", _identity_backend_params())
@pytest.mark.parametrize("tau", [1.0, 1.05])
def test_transform_identity_including_spills(backend, tau, stream):
    # tau=1.0 binds the cap tightly -> heavy balance-spill traffic
    k = 8
    clustering, cluster_partition = _clustered(stream, k)
    oracle, stats_fast = transform_partitions_chunked(
        stream, clustering, cluster_partition, k,
        imbalance_factor=tau, chunk_size=389,
    )
    jit, stats_jit = transform_partitions_chunked(
        stream, clustering, cluster_partition, k,
        imbalance_factor=tau, chunk_size=389,
        chunk_impl="jit", kernel_backend=backend,
    )
    assert np.array_equal(oracle, jit)
    for field in ("agreement", "mirror_reuse", "degree_cut", "balance_spill"):
        assert getattr(stats_fast, field) == getattr(stats_jit, field)
    reference, _ = transform_partitions(
        stream, clustering, cluster_partition, k, imbalance_factor=tau
    )
    assert np.array_equal(reference, jit)


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_transform_rejects_unmapped_vertex(backend, stream):
    # a -1 vertex_partition entry must raise in jit mode exactly as in fast
    k = 4
    clustering, cluster_partition = _clustered(stream, k)
    vp = cluster_partition[clustering.cluster_of]
    vp[int(stream.src[0])] = -1
    state = TransformState(
        clustering, None, k,
        num_edges=stream.num_edges,
        num_vertices=stream.num_vertices,
        vertex_partition=vp,
        chunk_impl="jit",
        kernel_backend=backend,
    )
    with pytest.raises(ValueError, match="does not cover"):
        state.ingest_pair(stream.src, stream.dst)


# --------------------------------------------------------------------- #
# full pipeline + config threading
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", _identity_backend_params())
def test_clugp_partitioner_config_threads_jit(backend, stream):
    cfg = ClugpConfig(
        num_partitions=8, chunk_impl="jit", kernel_backend=backend
    )
    base = ClugpPartitioner(8, seed=1).partition_chunked(
        stream, chunk_size=1024
    )
    jit = ClugpPartitioner(8, seed=1, config=cfg).partition_chunked(
        stream, chunk_size=1024
    )
    assert np.array_equal(base.edge_partition, jit.edge_partition)


def test_clugp_partitioner_ctor_overrides():
    p = ClugpPartitioner(8, chunk_impl="jit", kernel_backend="none")
    assert p.config.chunk_impl == "jit"
    assert p.config.kernel_backend == "none"


# --------------------------------------------------------------------- #
# collision-heavy property streams
# --------------------------------------------------------------------- #

edge_lists = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)),
    min_size=1,
    max_size=120,
)


def _tiny_stream(pairs):
    src = np.array([u for u, _ in pairs], dtype=np.int64)
    dst = np.array([v for _, v in pairs], dtype=np.int64)
    return EdgeStream(src, dst, 5)


@given(pairs=edge_lists, chunk_size=st.sampled_from([1, 3, 64]))
@settings(max_examples=40, deadline=None)
def test_hypothesis_streaming_identity_python_backend(pairs, chunk_size):
    # 5 vertices x up to 120 edges: every edge collides with prior state
    tiny = _tiny_stream(pairs)
    for name in ("hdrf", "greedy"):
        fast = _parts(name, tiny, 3, chunk_size)
        jit = _parts(
            name, tiny, 3, chunk_size,
            chunk_impl="jit", kernel_backend="python",
        )
        assert np.array_equal(fast, jit)


@given(pairs=edge_lists, chunk_size=st.sampled_from([1, 3, 64]))
@settings(max_examples=40, deadline=None)
def test_hypothesis_clustering_identity_python_backend(pairs, chunk_size):
    tiny = _tiny_stream(pairs)
    oracle = streaming_clustering(tiny, 3)
    jit = streaming_clustering_chunked(
        tiny, 3, chunk_size=chunk_size,
        chunk_impl="jit", kernel_backend="python",
    )
    assert np.array_equal(oracle.cluster_of, jit.cluster_of)
    assert oracle.mirror_clusters == jit.mirror_clusters


@needs_compiled
@given(pairs=edge_lists, chunk_size=st.sampled_from([1, 3, 64]))
@settings(max_examples=40, deadline=None)
def test_hypothesis_streaming_identity_compiled_backend(pairs, chunk_size):
    tiny = _tiny_stream(pairs)
    for name in ("hdrf", "greedy"):
        fast = _parts(name, tiny, 3, chunk_size)
        jit = _parts(name, tiny, 3, chunk_size, chunk_impl="jit")
        assert np.array_equal(fast, jit)


class TestDegradationReporting:
    """PR-8: failed backend resolution warns once, or raises in strict mode."""

    @pytest.fixture
    def broken_kernels(self, monkeypatch):
        """Force both compiled backends to look unavailable."""
        monkeypatch.setattr(kernels, "_cache", {"numba": None, "cc": None})
        monkeypatch.setattr(
            kernels, "_failures",
            {"numba": "numba not importable (or broken install)",
             "cc": "no working C compiler, or compile/bind failed"},
        )
        monkeypatch.setattr(kernels, "_warned_degraded", False)
        monkeypatch.delenv("CLUGP_KERNEL_BACKEND", raising=False)
        monkeypatch.delenv(kernels.ENV_REQUIRE, raising=False)
        return kernels

    def test_auto_failure_warns_once_naming_backends(self, broken_kernels, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            assert broken_kernels.get_backend("auto") is None
            assert broken_kernels.get_backend("auto") is None
        warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
        assert len(warnings) == 1
        message = warnings[0].getMessage()
        assert "numba" in message and "cc" in message
        assert "numpy fast path" in message

    def test_strict_raises_kernel_unavailable(self, broken_kernels):
        with pytest.raises(kernels.KernelUnavailableError, match="numba"):
            broken_kernels.get_backend("auto", strict=True)

    def test_env_require_raises(self, broken_kernels, monkeypatch):
        monkeypatch.setenv(kernels.ENV_REQUIRE, "1")
        with pytest.raises(kernels.KernelUnavailableError):
            broken_kernels.get_backend("auto")

    def test_concrete_backend_failure_raises_in_strict(self, broken_kernels):
        with pytest.raises(kernels.KernelUnavailableError):
            broken_kernels.get_backend("numba", strict=True)

    def test_explicit_none_never_raises(self, broken_kernels, monkeypatch):
        assert broken_kernels.get_backend("none", strict=True) is None
        monkeypatch.setenv(kernels.ENV_REQUIRE, "1")
        assert broken_kernels.get_backend("none") is None

    def test_python_backend_unaffected_by_strict(self, broken_kernels):
        backend = broken_kernels.get_backend("python", strict=True)
        assert backend is not None and backend.name == "python"

    def test_available_backend_short_circuits_warning(self, monkeypatch, caplog):
        monkeypatch.setattr(kernels, "_warned_degraded", False)
        if not kernels.available():
            pytest.skip("no compiled backend on this machine")
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            assert kernels.get_backend("auto") is not None
        assert not caplog.records
