"""Tests for PartitionAssignment and the EdgePartitioner interface."""

import numpy as np
import pytest

from repro.graph.stream import EdgeStream
from repro.partitioners.base import EdgePartitioner, PartitionAssignment


def make_assignment():
    # 4 edges over 4 vertices, 2 partitions
    stream = EdgeStream([0, 1, 2, 0], [1, 2, 3, 3], num_vertices=4)
    return PartitionAssignment(stream, [0, 0, 1, 1], num_partitions=2)


class TestValidation:
    def test_rejects_wrong_length(self):
        stream = EdgeStream([0], [1], num_vertices=2)
        with pytest.raises(ValueError, match="one entry per edge"):
            PartitionAssignment(stream, [0, 1], 2)

    def test_rejects_out_of_range_partition(self):
        stream = EdgeStream([0], [1], num_vertices=2)
        with pytest.raises(ValueError, match=r"\[0, 2\)"):
            PartitionAssignment(stream, [5], 2)

    def test_rejects_negative_partition(self):
        stream = EdgeStream([0], [1], num_vertices=2)
        with pytest.raises(ValueError):
            PartitionAssignment(stream, [-1], 2)

    def test_rejects_bad_k(self):
        stream = EdgeStream([0], [1], num_vertices=2)
        with pytest.raises(ValueError):
            PartitionAssignment(stream, [0], 0)


class TestMetrics:
    def test_partition_sizes(self):
        a = make_assignment()
        assert a.partition_sizes().tolist() == [2, 2]

    def test_vertex_partition_counts(self):
        a = make_assignment()
        # v0: edges 0 (p0) and 3 (p1) -> 2; v1: edges 0,1 (p0) -> 1
        # v2: edges 1 (p0), 2 (p1) -> 2; v3: edges 2,3 (p1) -> 1
        assert a.vertex_partition_counts().tolist() == [2, 1, 2, 1]

    def test_replication_factor(self):
        a = make_assignment()
        assert a.replication_factor() == pytest.approx(6 / 4)

    def test_replication_factor_ignores_isolated(self):
        stream = EdgeStream([0], [1], num_vertices=10)
        a = PartitionAssignment(stream, [0], 2)
        assert a.replication_factor() == 1.0

    def test_relative_balance_perfect(self):
        a = make_assignment()
        assert a.relative_balance() == pytest.approx(1.0)

    def test_relative_balance_skewed(self):
        stream = EdgeStream([0, 1, 2, 3], [1, 2, 3, 0], num_vertices=4)
        a = PartitionAssignment(stream, [0, 0, 0, 1], 2)
        assert a.relative_balance() == pytest.approx(2 * 3 / 4)

    def test_vertex_sets(self):
        a = make_assignment()
        sets = a.vertex_sets()
        assert sets[0].tolist() == [0, 1, 2]
        assert sets[1].tolist() == [0, 2, 3]

    def test_rf_at_least_one_for_any_assignment(self):
        a = make_assignment()
        assert a.replication_factor() >= 1.0


class _ConstantPartitioner(EdgePartitioner):
    name = "constant"

    def _assign(self, stream):
        return np.zeros(stream.num_edges, dtype=np.int64)


class TestInterface:
    def test_partition_records_time(self):
        stream = EdgeStream([0, 1], [1, 0], num_vertices=2)
        p = _ConstantPartitioner(4)
        result = p.partition(stream)
        assert "total" in result.stage_times
        assert result.total_time() >= 0.0

    def test_default_state_memory_zero(self):
        stream = EdgeStream([0], [1], num_vertices=2)
        assert _ConstantPartitioner(2).state_memory_bytes(stream) == 0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            _ConstantPartitioner(0)

    def test_default_preferred_order(self):
        assert _ConstantPartitioner(2).preferred_order == "random"
