"""Behavioural tests for the five streaming baselines (Table I)."""

import numpy as np
import pytest

from repro.graph.stream import EdgeStream
from repro.partitioners import (
    DBHPartitioner,
    GreedyPartitioner,
    HashingPartitioner,
    HDRFPartitioner,
    MintPartitioner,
)

ALL_CLASSES = [
    HashingPartitioner,
    DBHPartitioner,
    GreedyPartitioner,
    HDRFPartitioner,
    MintPartitioner,
]


@pytest.fixture(scope="module")
def stream(crawl_graph):
    return EdgeStream.from_graph(crawl_graph, order="random", seed=1)


@pytest.mark.parametrize("cls", ALL_CLASSES)
class TestCommonContract:
    def test_valid_assignment(self, cls, stream):
        assignment = cls(8).partition(stream)
        assert assignment.edge_partition.shape == (stream.num_edges,)
        assert assignment.edge_partition.min() >= 0
        assert assignment.edge_partition.max() < 8

    def test_deterministic(self, cls, stream):
        a = cls(8, seed=3).partition(stream).edge_partition
        b = cls(8, seed=3).partition(stream).edge_partition
        assert np.array_equal(a, b)

    def test_single_partition_trivial(self, cls, stream):
        assignment = cls(1).partition(stream)
        assert (assignment.edge_partition == 0).all()
        assert assignment.replication_factor() == 1.0


class TestHashing:
    def test_zero_state(self, stream):
        assert HashingPartitioner(8).state_memory_bytes(stream) == 0

    def test_seed_changes_placement(self, stream):
        a = HashingPartitioner(8, seed=0).partition(stream).edge_partition
        b = HashingPartitioner(8, seed=1).partition(stream).edge_partition
        assert not np.array_equal(a, b)

    def test_roughly_balanced(self, stream):
        assignment = HashingPartitioner(8).partition(stream)
        assert assignment.relative_balance() < 1.3


class TestDBH:
    def test_better_than_hashing_on_powerlaw(self, stream):
        rf_hash = HashingPartitioner(16).partition(stream).replication_factor()
        rf_dbh = DBHPartitioner(16).partition(stream).replication_factor()
        assert rf_dbh < rf_hash  # DBH's theoretical edge on skewed graphs

    def test_exact_degrees_variant(self, stream):
        assignment = DBHPartitioner(8, exact_degrees=True).partition(stream)
        assert assignment.edge_partition.max() < 8

    def test_exact_anchors_low_degree_endpoint(self):
        # star: all leaves have degree 1, hub degree 4 -> each edge hashes
        # its leaf, so the hub is cut and each leaf stays whole
        stream = EdgeStream([0, 0, 0, 0], [1, 2, 3, 4], num_vertices=5)
        assignment = DBHPartitioner(4, exact_degrees=True).partition(stream)
        counts = assignment.vertex_partition_counts()
        assert (counts[1:] == 1).all()

    def test_state_memory_scales_with_vertices(self, stream):
        assert DBHPartitioner(8).state_memory_bytes(stream) == stream.num_vertices * 8


class TestGreedy:
    def test_colocates_shared_endpoint(self):
        stream = EdgeStream([0, 0, 0], [1, 2, 3], num_vertices=4)
        assignment = GreedyPartitioner(4).partition(stream)
        # all edges share vertex 0, so greedy keeps them together
        assert np.unique(assignment.edge_partition).size == 1

    def test_balances_disjoint_edges(self):
        stream = EdgeStream([0, 2, 4, 6], [1, 3, 5, 7], num_vertices=8)
        assignment = GreedyPartitioner(4).partition(stream)
        assert assignment.partition_sizes().max() == 1

    def test_quality_beats_hashing(self, stream):
        rf_greedy = GreedyPartitioner(16).partition(stream).replication_factor()
        rf_hash = HashingPartitioner(16).partition(stream).replication_factor()
        assert rf_greedy < rf_hash


class TestHDRF:
    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            HDRFPartitioner(4, lambda_bal=-1.0)

    def test_higher_lambda_improves_balance(self, stream):
        loose = HDRFPartitioner(8, lambda_bal=0.1).partition(stream)
        tight = HDRFPartitioner(8, lambda_bal=4.0).partition(stream)
        assert tight.relative_balance() <= loose.relative_balance() + 0.05

    def test_quality_beats_dbh(self, stream):
        rf_hdrf = HDRFPartitioner(16).partition(stream).replication_factor()
        rf_dbh = DBHPartitioner(16).partition(stream).replication_factor()
        assert rf_hdrf < rf_dbh

    def test_cuts_high_degree_first(self):
        # hub 0 with 6 leaves + one leaf-leaf edge; HDRF should replicate
        # the hub rather than the low-degree leaves
        stream = EdgeStream(
            [0, 0, 0, 0, 0, 0, 1], [1, 2, 3, 4, 5, 6, 2], num_vertices=7
        )
        assignment = HDRFPartitioner(3, lambda_bal=2.0).partition(stream)
        counts = assignment.vertex_partition_counts()
        assert counts[0] == counts.max()


class TestMint:
    def test_batch_boundaries_respected(self, stream):
        assignment = MintPartitioner(8, batch_size=100).partition(stream)
        assert assignment.edge_partition.size == stream.num_edges

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            MintPartitioner(4, batch_size=0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            MintPartitioner(4, alpha=-1)

    def test_quality_between_hashing_and_hdrf(self, stream):
        rf_mint = MintPartitioner(16).partition(stream).replication_factor()
        rf_hash = HashingPartitioner(16).partition(stream).replication_factor()
        assert rf_mint < rf_hash  # Table I: Mint is Medium, Hashing is Low

    def test_balanced(self, stream):
        assignment = MintPartitioner(8).partition(stream)
        assert assignment.relative_balance() < 1.2

    def test_preferred_order_is_crawl(self):
        assert MintPartitioner(4).preferred_order == "natural"
