"""Tests for the offline multilevel (mini-METIS) partitioner."""

import numpy as np
import pytest

from repro.graph.generators import planted_partition_graph, web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.offline.minimetis import MiniMetisPartitioner, multilevel_vertex_partition
from repro.partitioners import HashingPartitioner


class TestMultilevel:
    def test_partition_ids_valid(self, crawl_graph):
        part = multilevel_vertex_partition(
            crawl_graph.src, crawl_graph.dst, crawl_graph.num_vertices, 8
        )
        assert part.shape == (crawl_graph.num_vertices,)
        assert part.min() >= 0 and part.max() < 8

    def test_vertex_balance_constraint(self, crawl_graph):
        part = multilevel_vertex_partition(
            crawl_graph.src,
            crawl_graph.dst,
            crawl_graph.num_vertices,
            4,
            imbalance=1.1,
        )
        counts = np.bincount(part, minlength=4)
        # FM never moves into an overweight partition; initial growth may
        # overshoot slightly, so allow a small slack above the target
        assert counts.max() <= 1.3 * crawl_graph.num_vertices / 4

    def test_communities_not_torn(self):
        g = planted_partition_graph(4, 30, p_in=0.3, p_out=0.002, seed=3)
        part = multilevel_vertex_partition(g.src, g.dst, g.num_vertices, 4, seed=1)
        # most vertices of each planted block should share a partition
        agreements = 0
        for b in range(4):
            block = part[b * 30 : (b + 1) * 30]
            agreements += np.bincount(block, minlength=4).max()
        assert agreements > 0.7 * g.num_vertices

    def test_deterministic(self, crawl_graph):
        a = multilevel_vertex_partition(
            crawl_graph.src, crawl_graph.dst, crawl_graph.num_vertices, 4, seed=2
        )
        b = multilevel_vertex_partition(
            crawl_graph.src, crawl_graph.dst, crawl_graph.num_vertices, 4, seed=2
        )
        assert np.array_equal(a, b)

    def test_edge_cut_better_than_random(self, crawl_graph):
        part = multilevel_vertex_partition(
            crawl_graph.src, crawl_graph.dst, crawl_graph.num_vertices, 8, seed=0
        )
        cut = (part[crawl_graph.src] != part[crawl_graph.dst]).mean()
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 8, crawl_graph.num_vertices)
        rand_cut = (rand[crawl_graph.src] != rand[crawl_graph.dst]).mean()
        assert cut < 0.7 * rand_cut


class TestMiniMetisPartitioner:
    def test_interface(self, crawl_stream):
        assignment = MiniMetisPartitioner(8).partition(crawl_stream)
        assert assignment.edge_partition.max() < 8
        assert assignment.replication_factor() >= 1.0

    def test_quality_beats_hashing(self, crawl_stream):
        rf_metis = MiniMetisPartitioner(8).partition(crawl_stream).replication_factor()
        rf_hash = HashingPartitioner(8).partition(crawl_stream).replication_factor()
        assert rf_metis < rf_hash

    def test_whole_graph_memory_profile(self, crawl_stream):
        p = MiniMetisPartitioner(8)
        # offline: state grows with |E|, unlike the streaming algorithms
        assert p.state_memory_bytes(crawl_stream) > crawl_stream.num_edges * 8

    def test_rejects_bad_imbalance(self):
        with pytest.raises(ValueError):
            MiniMetisPartitioner(4, imbalance=0.5)

    def test_small_graph(self):
        g = web_crawl_graph(150, avg_out_degree=5, seed=2)
        stream = EdgeStream.from_graph(g)
        assignment = MiniMetisPartitioner(2).partition(stream)
        assert assignment.partition_sizes().sum() == stream.num_edges
