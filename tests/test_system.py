"""Tests for the GAS simulator: placement, network, engine, apps."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.stream import EdgeStream
from repro.partitioners import HashingPartitioner
from repro.partitioners.base import PartitionAssignment
from repro.core.partitioner import ClugpPartitioner
from repro.system.engine import GasEngine
from repro.system.network import NetworkModel
from repro.system.placement import build_placement
from repro.system.apps import (
    connected_components,
    label_propagation,
    pagerank,
    sssp,
)
from repro.system.apps.pagerank import PageRankProgram
from repro.system.apps.sssp import SsspProgram

networkx = pytest.importorskip("networkx")


def tiny_assignment():
    stream = EdgeStream([0, 1, 2, 0], [1, 2, 3, 3], num_vertices=4)
    return PartitionAssignment(stream, [0, 0, 1, 1], num_partitions=2)


class TestPlacement:
    def test_masters_and_mirrors_account(self):
        placement = build_placement(tiny_assignment())
        assert placement.total_masters == 4  # every active vertex has one master
        assert placement.total_mirrors == 2  # v0 and v2 span both partitions
        assert placement.replication_factor() == pytest.approx(1.5)

    def test_master_is_majority_partition(self):
        stream = EdgeStream([0, 0, 0], [1, 2, 3], num_vertices=4)
        a = PartitionAssignment(stream, [0, 0, 1], num_partitions=2)
        placement = build_placement(a)
        assert placement.master[0] == 0  # 2 of 3 edges in partition 0

    def test_isolated_vertex_has_no_master(self):
        stream = EdgeStream([0], [1], num_vertices=5)
        a = PartitionAssignment(stream, [0], num_partitions=2)
        placement = build_placement(a)
        assert placement.master[4] == -1

    def test_per_partition_sums(self):
        placement = build_placement(tiny_assignment())
        assert placement.masters_per_partition.sum() == placement.total_masters
        assert placement.edges_per_partition.sum() == 4


class TestNetworkModel:
    def test_comm_seconds_components(self):
        net = NetworkModel(
            bandwidth_bytes_per_s=1e6,
            rtt_seconds=0.01,
            bytes_per_message=100,
            seconds_per_message=0.0,
            rounds_per_superstep=2,
        )
        # 1000 messages * 100B / 1e6 B/s = 0.1s + 2*0.01 RTT
        assert net.superstep_comm_seconds(1000) == pytest.approx(0.12)

    def test_message_volume(self):
        net = NetworkModel(bytes_per_message=16)
        assert net.message_volume_bytes(10) == 160

    def test_with_rtt(self):
        net = NetworkModel().with_rtt(0.5)
        assert net.rtt_seconds == 0.5

    def test_with_rtt_preserves_other_fields(self):
        base = NetworkModel(bandwidth_bytes_per_s=7e8, bytes_per_message=32)
        net = base.with_rtt(0.5)
        assert net.bandwidth_bytes_per_s == 7e8
        assert net.bytes_per_message == 32

    def test_with_bandwidth(self):
        base = NetworkModel().with_rtt(0.05)
        net = base.with_bandwidth(1e6)
        assert net.bandwidth_bytes_per_s == 1e6
        assert net.rtt_seconds == 0.05
        with pytest.raises(ValueError):
            base.with_bandwidth(0)

    def test_lower_bandwidth_costs_more(self):
        fast = NetworkModel().with_bandwidth(1.25e9)
        slow = NetworkModel().with_bandwidth(1e6)
        assert slow.superstep_comm_seconds(10_000) > fast.superstep_comm_seconds(10_000)

    def test_measured_comm_seconds_matches_modeled_at_default_size(self):
        net = NetworkModel()
        messages = 1000
        assert net.comm_seconds(
            messages, messages * net.bytes_per_message
        ) == pytest.approx(net.superstep_comm_seconds(messages))

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            NetworkModel(rtt_seconds=-1)

    def test_higher_rtt_costs_more(self):
        low = NetworkModel().with_rtt(0.01)
        high = NetworkModel().with_rtt(0.1)
        assert high.superstep_comm_seconds(10) > low.superstep_comm_seconds(10)


class TestEngine:
    def test_run_reports_costs(self, crawl_stream):
        a = HashingPartitioner(4).partition(crawl_stream)
        engine = GasEngine(a)
        _, cost = pagerank(engine, max_supersteps=5)
        assert cost.num_supersteps == 5
        assert cost.total_messages > 0
        assert cost.total_seconds > 0
        assert cost.total_bytes == cost.total_messages * engine.network.bytes_per_message

    def test_more_mirrors_more_messages(self, crawl_stream):
        bad = HashingPartitioner(8).partition(crawl_stream)
        good = ClugpPartitioner(8).partition(crawl_stream)
        net = NetworkModel()
        _, cost_bad = pagerank(GasEngine(bad, network=net), max_supersteps=5)
        _, cost_good = pagerank(GasEngine(good, network=net), max_supersteps=5)
        assert cost_good.total_messages < cost_bad.total_messages

    def test_rejects_bad_throughput(self):
        with pytest.raises(ValueError):
            GasEngine(tiny_assignment(), edges_per_second=0)

    def test_rejects_bad_max_supersteps(self):
        engine = GasEngine(tiny_assignment())
        with pytest.raises(ValueError):
            engine.run(PageRankProgram(), max_supersteps=0)

    def test_run_cost_to_dict(self):
        _, cost = pagerank(GasEngine(tiny_assignment()), max_supersteps=3)
        payload = cost.to_dict()
        assert payload["supersteps"] == cost.num_supersteps
        assert payload["messages"] == cost.total_messages
        assert payload["total_seconds"] == pytest.approx(cost.total_seconds)
        assert "per_superstep" not in payload
        detailed = cost.to_dict(per_superstep=True)
        assert len(detailed["per_superstep"]) == cost.num_supersteps
        assert detailed["per_superstep"][0]["superstep"] == 0
        assert (
            detailed["per_superstep"][0]["messages"] == cost.supersteps[0].messages
        )

    def test_run_cost_summary(self):
        _, cost = pagerank(GasEngine(tiny_assignment()), max_supersteps=3)
        text = cost.summary()
        assert f"supersteps={cost.num_supersteps}" in text
        assert f"messages={cost.total_messages}" in text


class TestPageRank:
    def test_matches_networkx(self, crawl_graph):
        stream = EdgeStream.from_graph(crawl_graph)
        a = HashingPartitioner(4).partition(stream)
        ranks, _ = pagerank(GasEngine(a), tol=1e-12, max_supersteps=200)
        G = networkx.MultiDiGraph()
        G.add_nodes_from(range(crawl_graph.num_vertices))
        G.add_edges_from(zip(crawl_graph.src.tolist(), crawl_graph.dst.tolist()))
        expected = networkx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=300)
        vec = np.array([expected[i] for i in range(crawl_graph.num_vertices)])
        assert np.abs(ranks - vec).max() < 1e-8

    def test_ranks_sum_to_one(self):
        engine = GasEngine(tiny_assignment())
        ranks, _ = pagerank(engine, max_supersteps=100)
        assert ranks.sum() == pytest.approx(1.0)

    def test_partitioning_does_not_change_values(self, crawl_stream):
        a1 = HashingPartitioner(2).partition(crawl_stream)
        a2 = ClugpPartitioner(8).partition(crawl_stream)
        r1, _ = pagerank(GasEngine(a1), max_supersteps=30)
        r2, _ = pagerank(GasEngine(a2), max_supersteps=30)
        assert np.allclose(r1, r2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PageRankProgram(damping=1.5)
        with pytest.raises(ValueError):
            PageRankProgram(tol=0)


class TestConnectedComponents:
    def test_matches_union_find(self, crawl_graph):
        stream = EdgeStream.from_graph(crawl_graph)
        a = HashingPartitioner(4).partition(stream)
        labels, _ = connected_components(GasEngine(a))
        assert np.array_equal(labels, crawl_graph.weakly_connected_components())

    def test_two_components(self):
        stream = EdgeStream([0, 2], [1, 3], num_vertices=4)
        a = PartitionAssignment(stream, [0, 1], num_partitions=2)
        labels, cost = connected_components(GasEngine(a))
        assert labels.tolist() == [0, 0, 2, 2]
        assert cost.num_supersteps >= 1


class TestSssp:
    def test_path_distances(self):
        stream = EdgeStream([0, 1, 2], [1, 2, 3], num_vertices=4)
        a = PartitionAssignment(stream, [0, 0, 1], num_partitions=2)
        dist, _ = sssp(GasEngine(a), source=0)
        assert dist.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_unreachable_is_inf(self):
        stream = EdgeStream([0], [1], num_vertices=3)
        a = PartitionAssignment(stream, [0], num_partitions=1)
        dist, _ = sssp(GasEngine(a), source=0)
        assert np.isinf(dist[2])

    def test_weighted(self):
        stream = EdgeStream([0, 0, 1], [1, 2, 2], num_vertices=3)
        a = PartitionAssignment(stream, [0, 0, 0], num_partitions=1)
        dist, _ = sssp(GasEngine(a), source=0, weights=[5.0, 1.0, 1.0])
        assert dist[2] == 1.0
        assert dist[1] == 5.0

    def test_matches_networkx(self, crawl_graph):
        stream = EdgeStream.from_graph(crawl_graph)
        a = HashingPartitioner(4).partition(stream)
        source = int(np.argmax(crawl_graph.out_degrees()))
        dist, _ = sssp(GasEngine(a), source=source)
        G = networkx.DiGraph()
        G.add_nodes_from(range(crawl_graph.num_vertices))
        G.add_edges_from(zip(crawl_graph.src.tolist(), crawl_graph.dst.tolist()))
        expected = networkx.single_source_shortest_path_length(G, source)
        for v, d in expected.items():
            assert dist[v] == d

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            SsspProgram(0, weights=[-1.0])

    def test_rejects_bad_source(self):
        engine = GasEngine(tiny_assignment())
        with pytest.raises(ValueError, match="source"):
            engine.run(SsspProgram(99))


class TestLabelPropagation:
    def test_communities_converge_on_planted(self, community_graph):
        stream = EdgeStream.from_graph(community_graph)
        a = HashingPartitioner(4).partition(stream)
        labels, _ = label_propagation(GasEngine(a), max_iters=8)
        # vertices in one planted block should mostly share a label
        block = labels[:40]
        dominant = np.bincount(block).max()
        assert dominant > 20

    def test_deterministic(self):
        engine = GasEngine(tiny_assignment())
        a, _ = label_propagation(engine, max_iters=3)
        b, _ = label_propagation(engine, max_iters=3)
        assert np.array_equal(a, b)

    def test_bounded_iterations(self):
        engine = GasEngine(tiny_assignment())
        _, cost = label_propagation(engine, max_iters=2)
        assert cost.num_supersteps <= 3
