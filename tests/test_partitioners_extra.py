"""Tests for the extra partitioners: Grid, LDG, FENNEL."""

import numpy as np
import pytest

from repro.graph.stream import EdgeStream
from repro.partitioners import (
    FennelPartitioner,
    GridPartitioner,
    HashingPartitioner,
    LdgPartitioner,
)


@pytest.fixture(scope="module")
def stream(crawl_graph):
    return EdgeStream.from_graph(crawl_graph, order="natural")


@pytest.mark.parametrize("cls", [GridPartitioner, LdgPartitioner, FennelPartitioner])
class TestContract:
    def test_valid_assignment(self, cls, stream):
        assignment = cls(9).partition(stream)
        assert assignment.edge_partition.min() >= 0
        assert assignment.edge_partition.max() < 9
        assert assignment.partition_sizes().sum() == stream.num_edges

    def test_deterministic(self, cls, stream):
        a = cls(8, seed=1).partition(stream).edge_partition
        b = cls(8, seed=1).partition(stream).edge_partition
        assert np.array_equal(a, b)

    def test_single_partition(self, cls, stream):
        assignment = cls(1).partition(stream)
        assert assignment.replication_factor() == 1.0


class TestGrid:
    def test_structural_replication_cap(self, stream):
        for k in (4, 9, 16, 25):
            p = GridPartitioner(k)
            assignment = p.partition(stream)
            counts = assignment.vertex_partition_counts()
            assert counts.max() <= p.max_replication()

    def test_cap_below_k_for_square_k(self):
        # 2*sqrt(k) - 1 < k for k >= 9
        assert GridPartitioner(16).max_replication() < 16
        assert GridPartitioner(25).max_replication() == 9

    def test_non_square_k_works(self, stream):
        assignment = GridPartitioner(7).partition(stream)
        assert assignment.edge_partition.max() < 7

    def test_better_than_hashing_at_large_k(self, stream):
        rf_grid = GridPartitioner(64).partition(stream).replication_factor()
        rf_hash = HashingPartitioner(64).partition(stream).replication_factor()
        assert rf_grid < rf_hash

    def test_roughly_balanced(self, stream):
        assignment = GridPartitioner(16).partition(stream)
        assert assignment.relative_balance() < 1.5


class TestLdg:
    def test_capacity_bounds_vertex_spread(self, stream):
        p = LdgPartitioner(8, capacity_slack=1.1)
        assignment = p.partition(stream)
        # vertex placement is capacity-bounded -> edge balance is loose but
        # partitions cannot collapse onto one node
        sizes = assignment.partition_sizes()
        assert np.count_nonzero(sizes) == 8

    def test_quality_beats_hashing(self, stream):
        rf_ldg = LdgPartitioner(16).partition(stream).replication_factor()
        rf_hash = HashingPartitioner(16).partition(stream).replication_factor()
        assert rf_ldg < rf_hash

    def test_rejects_bad_slack(self):
        with pytest.raises(ValueError):
            LdgPartitioner(4, capacity_slack=0)

    def test_neighbors_colocate_on_community_graph(self, community_graph):
        s = EdgeStream.from_graph(community_graph, order="natural")
        assignment = LdgPartitioner(4).partition(s)
        # within one planted block most edges should be internal
        part_of_edge = assignment.edge_partition
        src_block = s.src // 40
        dst_block = s.dst // 40
        same_block = src_block == dst_block
        # edges within a block overwhelmingly land in that block's modal partition
        assert assignment.replication_factor() < 3.0
        assert same_block.any()


class TestFennel:
    def test_default_alpha_from_graph(self, stream):
        p = FennelPartitioner(8)
        assignment = p.partition(stream)
        assert assignment.edge_partition.max() < 8

    def test_explicit_alpha(self, stream):
        looser = FennelPartitioner(8, alpha=1e-9).partition(stream)
        tighter = FennelPartitioner(8, alpha=1e3).partition(stream)
        # stronger balance penalty -> flatter vertex distribution -> lower
        # max edge load
        assert tighter.relative_balance() <= looser.relative_balance() + 1e-9

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            FennelPartitioner(4, gamma=1.0)

    def test_quality_beats_hashing(self, stream):
        rf = FennelPartitioner(16).partition(stream).replication_factor()
        rf_hash = HashingPartitioner(16).partition(stream).replication_factor()
        assert rf < rf_hash


class TestRegistryIntegration:
    def test_new_names_registered(self):
        from repro.partitioners.registry import PARTITIONERS

        for name in ("grid", "ldg", "fennel"):
            assert name in PARTITIONERS
