"""Tests for the Section IV-B analytical model (Equations 3-9,
Theorems 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    PowerLawModel,
    min_degree_for_replicas_clugp,
    min_degree_for_replicas_holl,
    replication_factor_upper_bound,
    tail_fraction,
)


class TestTailFraction:
    def test_all_vertices_at_minimum_degree(self):
        assert tail_fraction(1.0, alpha=2.1, gamma=1) == 1.0

    def test_decreasing_in_degree(self):
        values = [tail_fraction(d, 2.1, 1) for d in (2, 5, 20, 100)]
        assert values == sorted(values, reverse=True)

    def test_heavier_tail_with_smaller_alpha(self):
        assert tail_fraction(50, 1.5, 1) > tail_fraction(50, 3.0, 1)

    def test_clipped_to_unit_interval(self):
        assert 0.0 <= tail_fraction(1.5, 2.1, 1) <= 1.0

    def test_equation3_closed_form(self):
        # theta = (gamma / (d - 1))^(alpha - 1)
        assert tail_fraction(11, 2.0, 1) == pytest.approx(0.1)
        assert tail_fraction(11, 3.0, 1) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            tail_fraction(5, alpha=1.0)
        with pytest.raises(ValueError):
            tail_fraction(5, alpha=2.0, gamma=0)


class TestMinDegreeLadders:
    def test_degenerate_values_match(self):
        # d_min coincide for r <= 1 (used by the bound's shared terms)
        for r in (0, 1):
            assert min_degree_for_replicas_clugp(r, 1000, 50) == (
                min_degree_for_replicas_holl(r)
            )

    def test_holl_is_linear(self):
        assert min_degree_for_replicas_holl(5) == 4
        assert min_degree_for_replicas_holl(10) == 9

    def test_clugp_equation8(self):
        vmax, dmax, r = 1000, 50, 3
        expected = (vmax - 1) * (1 - (1 - 1 / (1 + dmax)) ** (r - 1)) + 2
        assert min_degree_for_replicas_clugp(r, vmax, dmax) == pytest.approx(expected)

    def test_theorem2_clugp_needs_higher_degree(self):
        # d_min^clugp(r) > d_min^holl(r) for r >= 2 when vmax > dmax
        for vmax, dmax in [(1000, 50), (500, 100), (10_000, 2_000)]:
            for r in range(2, 12):
                assert min_degree_for_replicas_clugp(
                    r, vmax, dmax
                ) > min_degree_for_replicas_holl(r)

    def test_monotone_in_replicas(self):
        ladder = [min_degree_for_replicas_clugp(r, 1000, 50) for r in range(1, 10)]
        assert ladder == sorted(ladder)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_degree_for_replicas_clugp(-1, 10, 10)
        with pytest.raises(ValueError):
            min_degree_for_replicas_holl(-2)


class TestRfBounds:
    def test_theorem1_clugp_bound_below_holl(self):
        for m in (8, 64, 512):
            for alpha in (1.8, 2.1, 2.8):
                clugp = replication_factor_upper_bound(m, alpha, 1, 100_000, 5_000, "clugp")
                holl = replication_factor_upper_bound(m, alpha, 1, 100_000, 5_000, "holl")
                assert clugp <= holl + 1e-12, (m, alpha)

    def test_bounds_at_least_one(self):
        assert replication_factor_upper_bound(4, 2.1, 1, 100, 10) >= 1.0

    def test_trivial_when_m_leq_gamma(self):
        assert replication_factor_upper_bound(2, 2.1, 2, 100, 10) == 1.0

    def test_grows_with_cluster_count_for_holl(self):
        small = replication_factor_upper_bound(8, 2.1, 1, 10_000, 500, "holl")
        large = replication_factor_upper_bound(256, 2.1, 1, 10_000, 500, "holl")
        assert large > small

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            replication_factor_upper_bound(4, 2.1, 1, 100, 10, "bogus")


class TestPowerLawModel:
    def test_advantage_nonnegative(self):
        model = PowerLawModel(alpha=2.1, gamma=1, dmax=5000)
        for m in (16, 128, 1024):
            assert model.clugp_advantage(m, vmax=100_000) >= 0.0

    def test_advantage_shrinks_with_lighter_tail(self):
        heavy = PowerLawModel(alpha=1.9, gamma=1, dmax=5000)
        light = PowerLawModel(alpha=3.0, gamma=1, dmax=5000)
        assert heavy.clugp_advantage(256, 50_000) > light.clugp_advantage(256, 50_000)

    def test_replica_ladder_shape(self):
        model = PowerLawModel()
        ladder = model.replica_ladder(vmax=1000, max_replicas=8)
        assert ladder.shape == (9,)
        assert (np.diff(ladder) >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerLawModel(alpha=0.9)
        with pytest.raises(ValueError):
            PowerLawModel(gamma=0)


@settings(max_examples=50, deadline=None)
@given(
    r=st.integers(2, 30),
    vmax=st.integers(10, 10**6),
    dmax=st.integers(1, 10**5),
)
def test_property_theorem2_whenever_vmax_exceeds_dmax(r, vmax, dmax):
    # the paper's proof linearizes (1 - 1/(1+d_max))^(r-1) ~ 1 - (r-1)/(1+d_max),
    # valid when r << d_max, and assumes V_max > d_max; CLUGP's ladder
    # saturates at V_max + 1 while Holl's grows linearly, so outside that
    # regime (huge r, or V_max barely above d_max) the closed forms can
    # cross.  We assert the inequality exactly in the theorem's regime.
    if vmax <= 2 * dmax or 2 * (r - 1) > dmax:
        return
    assert min_degree_for_replicas_clugp(r, vmax, dmax) > (
        min_degree_for_replicas_holl(r)
    )
