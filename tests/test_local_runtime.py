"""Tests for the partition-local GAS runtime: local index spaces, typed
message buffers, and the local-vs-global parity contract.

The acceptance matrix pins the runtime to the retained global oracle:
min/label programs bit-identical, PageRank allclose (atol 1e-12) with
identical superstep counts, for k in {2, 4, 8} across hashing / hdrf /
clugp — and on every run the *measured* sync messages must equal the
modeled ``2 * sum(|P(v)| - 1)`` replication formula over the sync set.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_algorithm
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.partitioners.base import PartitionAssignment
from repro.system import (
    GasEngine,
    LocalGasRuntime,
    build_local_index,
    build_placement,
    make_engine,
)
from repro.system.apps import (
    connected_components,
    label_propagation,
    pagerank,
    sssp,
)
from repro.system.messages import ragged_take_indices

PARTITIONERS = ("hashing", "hdrf", "clugp")
PARTITION_COUNTS = (2, 4, 8)


@pytest.fixture(scope="module")
def parity_stream() -> EdgeStream:
    """~3.5K-edge crawl with some edgeless vertices (coordinator path)."""
    graph = web_crawl_graph(600, avg_out_degree=6.0, host_size=25, seed=11)
    return EdgeStream.from_graph(graph, order="natural")


@pytest.fixture(scope="module")
def assignments(parity_stream) -> dict:
    return {
        (name, k): run_algorithm(name, parity_stream, k, seed=0)[1]
        for name in PARTITIONERS
        for k in PARTITION_COUNTS
    }


def tiny_assignment():
    stream = EdgeStream([0, 1, 2, 0], [1, 2, 3, 3], num_vertices=4)
    return PartitionAssignment(stream, [0, 0, 1, 1], num_partitions=2)


def assert_message_parity(runtime: LocalGasRuntime, cost) -> None:
    """Measured buffer messages == 2*sum(|P(v)|-1) over each sync set."""
    sync_factor = np.clip(runtime.placement.replica_counts - 1, 0, None)
    assert len(runtime.sync_masks) == cost.num_supersteps
    for superstep, mask in zip(cost.supersteps, runtime.sync_masks):
        assert superstep.messages == 2 * int(sync_factor[mask].sum())


# ---------------------------------------------------------------------- #
# local index spaces
# ---------------------------------------------------------------------- #

edge_streams = st.integers(2, 25).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=0,
            max_size=60,
        ),
    )
)


def build_random_assignment(data):
    n, edges = data
    src = [u for u, _ in edges]
    dst = [v for _, v in edges]
    stream = EdgeStream(src, dst, num_vertices=n)
    k = 1 + (len(edges) % 5)
    rng = np.random.default_rng(len(edges) * 31 + n)
    edge_partition = rng.integers(0, k, size=len(edges))
    return PartitionAssignment(stream, edge_partition, num_partitions=k)


class TestLocalIndex:
    @settings(deadline=None, max_examples=60)
    @given(edge_streams)
    def test_round_trip_and_edge_slices(self, data):
        assignment = build_random_assignment(data)
        index = build_local_index(assignment)
        stream = assignment.stream
        all_edge_ids = []
        for part in index.partitions:
            # global -> local -> global round trip over the hosted set
            assert np.array_equal(
                part.to_global(part.to_local(part.vertices)), part.vertices
            )
            # local edges are exactly the partition's stream slice
            assert np.array_equal(
                part.to_global(part.src_local), stream.src[part.edge_ids]
            )
            assert np.array_equal(
                part.to_global(part.dst_local), stream.dst[part.edge_ids]
            )
            assert np.array_equal(
                assignment.edge_partition[part.edge_ids],
                np.full(part.num_edges, part.pid),
            )
            all_edge_ids.append(part.edge_ids)
        # every stream edge lands in exactly one partition slice
        assert np.array_equal(
            np.sort(np.concatenate(all_edge_ids)), np.arange(stream.num_edges)
        )

    @settings(deadline=None, max_examples=60)
    @given(edge_streams)
    def test_mirror_routes_consistent_with_replica_counts(self, data):
        assignment = build_random_assignment(data)
        placement = build_placement(assignment)
        index = build_local_index(assignment, placement)
        routes = index.routes
        # one route row per mirror replica: counts match |P(v)| - 1
        assert np.array_equal(
            np.bincount(routes.vertex, minlength=assignment.stream.num_vertices),
            np.clip(placement.replica_counts - 1, 0, None),
        )
        # every row routes a mirror to that vertex's master partition
        assert np.array_equal(routes.master_part, placement.master[routes.vertex])
        assert not np.any(routes.mirror_part == routes.master_part)
        # local slots decode back to the routed vertex on both sides
        for pid, part in enumerate(index.partitions):
            rows = routes.mirror_part == pid
            assert np.array_equal(
                part.to_global(routes.mirror_local[rows]), routes.vertex[rows]
            )
            assert not part.is_master[routes.mirror_local[rows]].any()
            at_master = routes.master_part == pid
            assert np.array_equal(
                part.to_global(routes.master_local[at_master]),
                routes.vertex[at_master],
            )
            assert part.is_master[routes.master_local[at_master]].all()
            # indptr delimits this partition's mirror rows
            assert routes.mirror_indptr[pid + 1] - routes.mirror_indptr[pid] == int(
                np.count_nonzero(rows)
            )

    def test_masters_partition_hosted_vertices(self):
        index = build_local_index(tiny_assignment())
        master_of = np.full(4, -1)
        for part in index.partitions:
            masters = part.vertices[part.is_master]
            assert np.all(master_of[masters] == -1)
            master_of[masters] = part.pid
        assert np.array_equal(master_of, index.placement.master)

    def test_to_local_rejects_unhosted(self):
        index = build_local_index(tiny_assignment())
        # vertex 3 has no edge in partition 0
        with pytest.raises(KeyError):
            index.partitions[0].to_local([3])


class TestRaggedTake:
    def test_interleaved_empty_slices(self):
        starts = np.array([5, 0, 9, 0], dtype=np.int64)
        lengths = np.array([2, 0, 3, 0], dtype=np.int64)
        out_indptr = np.zeros(5, dtype=np.int64)
        np.cumsum(lengths, out=out_indptr[1:])
        flat = ragged_take_indices(starts, lengths, out_indptr)
        assert flat.tolist() == [5, 6, 9, 10, 11]

    def test_all_empty(self):
        out = ragged_take_indices(
            np.array([3, 7]), np.array([0, 0]), np.zeros(3, dtype=np.int64)
        )
        assert out.size == 0


# ---------------------------------------------------------------------- #
# local-vs-global parity (the acceptance matrix)
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("name", PARTITIONERS)
@pytest.mark.parametrize("k", PARTITION_COUNTS)
class TestParityMatrix:
    def test_pagerank(self, assignments, parity_stream, name, k):
        assignment = assignments[(name, k)]
        runtime = LocalGasRuntime(assignment)
        local_values, local_cost = pagerank(runtime, max_supersteps=40)
        oracle_values, oracle_cost = pagerank(GasEngine(assignment), max_supersteps=40)
        assert local_cost.num_supersteps == oracle_cost.num_supersteps
        assert np.allclose(local_values, oracle_values, atol=1e-12, rtol=0.0)
        # dense activation: measured messages == oracle-modeled, per superstep
        assert [s.messages for s in local_cost.supersteps] == [
            s.messages for s in oracle_cost.supersteps
        ]
        assert_message_parity(runtime, local_cost)

    def test_sssp(self, assignments, parity_stream, name, k):
        assignment = assignments[(name, k)]
        source = int(
            np.bincount(
                parity_stream.src, minlength=parity_stream.num_vertices
            ).argmax()
        )
        runtime = LocalGasRuntime(assignment)
        local_values, local_cost = sssp(runtime, source=source)
        oracle_values, oracle_cost = sssp(GasEngine(assignment), source=source)
        assert np.array_equal(local_values, oracle_values)
        assert local_cost.num_supersteps == oracle_cost.num_supersteps
        assert_message_parity(runtime, local_cost)

    def test_connected_components(self, assignments, parity_stream, name, k):
        assignment = assignments[(name, k)]
        runtime = LocalGasRuntime(assignment)
        local_values, local_cost = connected_components(runtime)
        oracle_values, oracle_cost = connected_components(GasEngine(assignment))
        assert np.array_equal(local_values, oracle_values)
        assert local_cost.num_supersteps == oracle_cost.num_supersteps
        assert_message_parity(runtime, local_cost)

    def test_label_propagation(self, assignments, parity_stream, name, k):
        assignment = assignments[(name, k)]
        runtime = LocalGasRuntime(assignment)
        local_values, local_cost = label_propagation(runtime, max_iters=8)
        oracle_values, oracle_cost = label_propagation(
            GasEngine(assignment), max_iters=8
        )
        assert np.array_equal(local_values, oracle_values)
        assert local_cost.num_supersteps == oracle_cost.num_supersteps
        assert_message_parity(runtime, local_cost)


@settings(deadline=None, max_examples=40)
@given(edge_streams)
def test_connected_components_parity_random(data):
    """Random streams/cuts: HashMin bit-identical local vs global."""
    assignment = build_random_assignment(data)
    runtime = LocalGasRuntime(assignment)
    local_values, local_cost = connected_components(runtime)
    oracle_values, _ = connected_components(GasEngine(assignment))
    assert np.array_equal(local_values, oracle_values)
    assert_message_parity(runtime, local_cost)


# ---------------------------------------------------------------------- #
# measured-vs-modeled golden test
# ---------------------------------------------------------------------- #


class TestMessageParityGolden:
    def test_cc_on_four_cycle(self):
        """Hand-checked: path 0-1-2-3 + chord 0-3, cut across two partitions.

        Replicas: v0 and v2 span both partitions (sync factor 1), v1 and
        v3 are single-homed.  Superstep 0 syncs everybody (2*(1+1) = 4
        messages), superstep 1 activates the whole frontier again (4),
        superstep 2 only {1, 3} remain active — both unreplicated, so the
        final superstep is message-free.
        """
        runtime = LocalGasRuntime(tiny_assignment())
        labels, cost = connected_components(runtime)
        assert labels.tolist() == [0, 0, 0, 0]
        assert cost.num_supersteps == 3
        assert [s.messages for s in cost.supersteps] == [4, 4, 0]
        assert_message_parity(runtime, cost)
        # the buffers carried 16 bytes/message (8B vertex id + 8B value)
        assert [s.bytes for s in cost.supersteps] == [64, 64, 0]

    def test_frontier_sync_differs_from_oracle_changed_model(self):
        """The oracle charges changed vertices; the runtime syncs the
        scatter-activated frontier.  On the golden graph they diverge
        after the first superstep — both satisfy the formula on their
        own activation sets."""
        assignment = tiny_assignment()
        _, oracle_cost = connected_components(GasEngine(assignment))
        assert [s.messages for s in oracle_cost.supersteps] == [4, 2, 2]


# ---------------------------------------------------------------------- #
# runtime behaviour
# ---------------------------------------------------------------------- #


class TestLocalRuntime:
    def test_make_engine_modes(self):
        assignment = tiny_assignment()
        assert isinstance(make_engine(assignment, mode="local"), LocalGasRuntime)
        assert isinstance(make_engine(assignment, mode="global"), GasEngine)
        with pytest.raises(ValueError, match="mode"):
            make_engine(assignment, mode="async")

    def test_rejects_bad_throughput(self):
        with pytest.raises(ValueError):
            LocalGasRuntime(tiny_assignment(), edges_per_second=0)

    def test_rejects_bad_max_supersteps(self):
        runtime = LocalGasRuntime(tiny_assignment())
        with pytest.raises(ValueError):
            connected_components(runtime, max_supersteps=0)

    def test_single_partition_is_message_free(self):
        stream = EdgeStream([0, 1, 2], [1, 2, 3], num_vertices=4)
        assignment = PartitionAssignment(stream, [0, 0, 0], num_partitions=1)
        runtime = LocalGasRuntime(assignment)
        dist, cost = sssp(runtime, source=0)
        assert dist.tolist() == [0.0, 1.0, 2.0, 3.0]
        assert cost.total_messages == 0

    def test_empty_stream_runs(self):
        stream = EdgeStream([], [], num_vertices=5)
        assignment = PartitionAssignment(stream, [], num_partitions=2)
        labels, cost = connected_components(LocalGasRuntime(assignment))
        assert labels.tolist() == [0, 1, 2, 3, 4]
        assert cost.total_messages == 0

    def test_isolated_vertices_keep_pagerank_mass(self):
        # vertex 3 has no edges: its rank is applied by the coordinator
        stream = EdgeStream([0, 1], [1, 0], num_vertices=4)
        assignment = PartitionAssignment(stream, [0, 1], num_partitions=2)
        local_values, _ = pagerank(LocalGasRuntime(assignment), max_supersteps=60)
        oracle_values, _ = pagerank(GasEngine(assignment), max_supersteps=60)
        assert np.allclose(local_values, oracle_values, atol=1e-12, rtol=0.0)
        assert local_values.sum() == pytest.approx(1.0)

    def test_self_loops_count_twice_in_lp(self):
        stream = EdgeStream([0, 0, 1], [0, 1, 2], num_vertices=3)
        assignment = PartitionAssignment(stream, [0, 1, 1], num_partitions=2)
        local_values, _ = label_propagation(LocalGasRuntime(assignment), max_iters=4)
        oracle_values, _ = label_propagation(GasEngine(assignment), max_iters=4)
        assert np.array_equal(local_values, oracle_values)

    def test_weighted_sssp_slices_weights_per_partition(self):
        stream = EdgeStream([0, 0, 1], [1, 2, 2], num_vertices=3)
        assignment = PartitionAssignment(stream, [0, 1, 0], num_partitions=2)
        weights = [5.0, 1.0, 1.0]
        local_values, _ = sssp(LocalGasRuntime(assignment), source=0, weights=weights)
        oracle_values, _ = sssp(GasEngine(assignment), source=0, weights=weights)
        assert np.array_equal(local_values, oracle_values)
        assert local_values.tolist() == [0.0, 5.0, 1.0]

    def test_sssp_validation_matches_oracle(self):
        runtime = LocalGasRuntime(tiny_assignment())
        with pytest.raises(ValueError, match="source"):
            sssp(runtime, source=99)
        with pytest.raises(ValueError, match="non-negative"):
            sssp(runtime, source=0, weights=[-1.0, 1.0, 1.0, 1.0])

    def test_values_local_released_after_run(self):
        runtime = LocalGasRuntime(tiny_assignment())
        connected_components(runtime)
        assert runtime.values_local is None
