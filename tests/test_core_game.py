"""Tests for the cluster-partitioning potential game (Section V).

Includes direct checks of the paper's theorems on small instances:
exact-potential property (Theorem 4), lambda range (Theorem 5), round
bound via monotone potential (Theorem 6), and PoS <= 2 (Theorem 8) against
brute-forced optima.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GameConfig
from repro.graph.digraph import DiGraph
from repro.graph.stream import EdgeStream
from repro.core.clustering import streaming_clustering
from repro.core.cluster_graph import ClusterGraph, build_cluster_graph
from repro.core.game import (
    ClusterPartitioningGame,
    compute_lambda_balanced,
    compute_lambda_max,
    exhaustive_optimum,
)


def make_cluster_graph(num_clusters, internal, inter):
    """Handmade cluster graph: ``inter`` is {(a, b): weight}."""
    out_edges = [dict() for _ in range(num_clusters)]
    in_edges = [dict() for _ in range(num_clusters)]
    for (a, b), w in inter.items():
        out_edges[a][b] = w
        in_edges[b][a] = w
    return ClusterGraph.from_dicts(
        num_clusters, np.asarray(internal, dtype=np.int64), out_edges, in_edges
    )


def crawl_cluster_graph(seed=0):
    from repro.graph.generators import web_crawl_graph

    g = web_crawl_graph(600, avg_out_degree=8, host_size=30, seed=seed)
    s = EdgeStream.from_graph(g)
    clustering = streaming_clustering(s, max_volume=s.num_edges // 16)
    return build_cluster_graph(s, clustering)


class TestLambda:
    def test_lambda_max_formula(self):
        cg = make_cluster_graph(2, [3, 5], {(0, 1): 4})
        # k^2 * total_cut / total_internal^2 = 4 * 4 / 64
        assert compute_lambda_max(cg, 2) == pytest.approx(0.25)

    def test_lambda_max_zero_internal(self):
        cg = make_cluster_graph(2, [0, 0], {(0, 1): 3})
        assert compute_lambda_max(cg, 4) == 0.0

    def test_lambda_balanced_equalizes_terms(self):
        cg = crawl_cluster_graph()
        assignment = np.arange(cg.num_clusters) % 4
        lam = compute_lambda_balanced(cg, 4, assignment)
        loads = np.bincount(assignment, weights=cg.internal, minlength=4)
        load_term = lam / 4 * np.sum(loads**2)
        cut = 0
        for c in range(cg.num_clusters):
            for nbr, w in cg.out_dict(c).items():
                if assignment[nbr] != assignment[c]:
                    cut += w
        assert load_term == pytest.approx(cut)

    def test_lambda_nonnegative_and_bounded(self):
        # Theorem 5: 0 <= lambda <= k^2 sum(cut) / (sum |c_i|)^2
        cg = crawl_cluster_graph()
        for k in (2, 8, 32):
            lam = compute_lambda_max(cg, k)
            bound = k**2 * cg.total_cut() / cg.total_internal() ** 2
            assert 0.0 <= lam <= bound + 1e-12


class TestExactPotential:
    def test_unilateral_move_deltas_match(self):
        # Theorem 4: Phi(a'_i, a_-i) - Phi(a_i, a_-i) ==
        #            phi(a'_i, a_-i) - phi(a_i, a_-i) for every move
        cg = crawl_cluster_graph(seed=1)
        game = ClusterPartitioningGame(cg, 4, GameConfig(seed=0))
        rng = np.random.default_rng(7)
        for _ in range(50):
            c = int(rng.integers(cg.num_clusters))
            target = int(rng.integers(4))
            cur = int(game.assignment[c])
            if target == cur:
                continue
            phi_before = game.individual_cost(c)
            pot_before = game.potential()
            size = float(cg.internal[c])
            game.loads[cur] -= size
            game.loads[target] += size
            game.assignment[c] = target
            phi_after = game.individual_cost(c)
            pot_after = game.potential()
            assert phi_after - phi_before == pytest.approx(
                pot_after - pot_before, rel=1e-9, abs=1e-9
            )

    def test_global_cost_is_sum_of_individual_costs(self):
        # Equation 12: phi(Lambda) == sum_i phi(a_i)
        cg = crawl_cluster_graph(seed=2)
        game = ClusterPartitioningGame(cg, 4, GameConfig(seed=1))
        total = sum(game.individual_cost(c) for c in range(cg.num_clusters))
        assert total == pytest.approx(game.global_cost(), rel=1e-9)


class TestDynamics:
    def test_potential_monotonically_decreases(self):
        cg = crawl_cluster_graph(seed=3)
        game = ClusterPartitioningGame(cg, 8, GameConfig(seed=0))
        result = game.run()
        trace = result.potential_trace
        for before, after in zip(trace, trace[1:]):
            assert after <= before + 1e-9

    def test_converges_to_nash_equilibrium(self):
        cg = crawl_cluster_graph(seed=4)
        game = ClusterPartitioningGame(cg, 8, GameConfig(seed=0))
        result = game.run()
        assert result.converged
        assert game.is_nash_equilibrium()

    def test_no_move_when_already_optimal(self):
        # one cluster, one partition: nothing to do
        cg = make_cluster_graph(1, [5], {})
        game = ClusterPartitioningGame(cg, 1, GameConfig(seed=0))
        result = game.run()
        assert result.moves == 0 and result.rounds == 1

    def test_seed_determines_outcome(self):
        cg = crawl_cluster_graph(seed=5)
        a = ClusterPartitioningGame(cg, 4, GameConfig(seed=3)).run()
        b = ClusterPartitioningGame(cg, 4, GameConfig(seed=3)).run()
        assert np.array_equal(a.assignment, b.assignment)

    def test_balance_pressure_spreads_clusters(self):
        # equal-size clusters, no inter edges: the game must spread them
        cg = make_cluster_graph(8, [10] * 8, {})
        game = ClusterPartitioningGame(
            cg, 4, GameConfig(seed=0, lambda_mode="fixed", lambda_value=1.0)
        )
        game.run()
        loads = np.bincount(game.assignment, weights=cg.internal, minlength=4)
        assert loads.max() == loads.min() == 20

    def test_cut_pressure_colocates_heavy_pair(self):
        # two clusters joined by a heavy edge, tiny lambda: same partition
        cg = make_cluster_graph(2, [1, 1], {(0, 1): 50})
        game = ClusterPartitioningGame(
            cg, 2, GameConfig(seed=0, lambda_mode="fixed", lambda_value=1e-6)
        )
        game.run()
        assert game.assignment[0] == game.assignment[1]

    def test_two_communities_separate_under_balance(self):
        # two dense pairs, lambda at max: each pair co-located, pairs apart
        cg = make_cluster_graph(
            4, [10, 10, 10, 10], {(0, 1): 20, (2, 3): 20, (1, 2): 1}
        )
        game = ClusterPartitioningGame(cg, 2, GameConfig(seed=1))
        game.run()
        assert game.assignment[0] == game.assignment[1]
        assert game.assignment[2] == game.assignment[3]
        assert game.assignment[0] != game.assignment[2]


class TestQualityBounds:
    def test_pos_bound_theorem8(self):
        # best Nash equilibrium cost <= 2 * optimum (PoS <= 2); we verify
        # the weaker testable form: the equilibrium found from any seed is
        # within factor 2*... of the brute-force optimum for the paper's
        # potential-based argument Phi <= phi <= 2 Phi
        cg = make_cluster_graph(
            3, [4, 2, 3], {(0, 1): 2, (1, 2): 1, (2, 0): 1}
        )
        k = 2
        lam = compute_lambda_max(cg, k)
        _, opt_cost = exhaustive_optimum(cg, k, lam)
        best_eq = np.inf
        for seed in range(6):
            game = ClusterPartitioningGame(cg, k, GameConfig(seed=seed))
            game.run()
            best_eq = min(best_eq, game.global_cost())
        assert best_eq <= 2.0 * opt_cost + 1e-9

    def test_poa_bound_theorem7(self):
        # every equilibrium cost <= (k+1) * sum of cluster cut degrees
        cg = make_cluster_graph(
            3, [4, 2, 3], {(0, 1): 2, (1, 2): 1, (2, 0): 1}
        )
        k = 2
        total_cut = cg.total_cut()
        for seed in range(6):
            game = ClusterPartitioningGame(cg, k, GameConfig(seed=seed))
            game.run()
            assert game.global_cost() <= (k + 1) * 2 * total_cut + 1e-9

    def test_equilibrium_beats_random_start(self):
        cg = crawl_cluster_graph(seed=6)
        game = ClusterPartitioningGame(cg, 8, GameConfig(seed=2))
        start_cost = game.global_cost()
        game.run()
        assert game.global_cost() <= start_cost

    def test_exhaustive_optimum_guard(self):
        cg = make_cluster_graph(30, [1] * 30, {})
        with pytest.raises(ValueError, match="too large"):
            exhaustive_optimum(cg, 4, 1.0)


class TestRelativeWeight:
    def test_weight_scales_load_term(self):
        cg = crawl_cluster_graph(seed=7)
        heavy_load = ClusterPartitioningGame(
            cg, 4, GameConfig(seed=0, relative_weight=0.9)
        )
        light_load = ClusterPartitioningGame(
            cg, 4, GameConfig(seed=0, relative_weight=0.1)
        )
        assert heavy_load._lambda_eff > light_load._lambda_eff

    def test_extreme_weight_balance_dominates(self):
        cg = make_cluster_graph(4, [10, 10, 10, 10], {(0, 1): 5, (2, 3): 5})
        game = ClusterPartitioningGame(
            cg, 4, GameConfig(seed=0, relative_weight=0.99)
        )
        game.run()
        loads = np.bincount(game.assignment, weights=cg.internal, minlength=4)
        assert loads.max() == 10  # perfectly spread despite the cut cost


@settings(max_examples=15, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=3, max_size=60
    ),
    k=st.integers(2, 6),
    seed=st.integers(0, 100),
)
def test_property_game_reaches_stable_state(edges, k, seed):
    s = EdgeStream.from_graph(DiGraph.from_edges(edges))
    clustering = streaming_clustering(s, max_volume=max(1, s.num_edges // 2))
    cg = build_cluster_graph(s, clustering)
    game = ClusterPartitioningGame(cg, k, GameConfig(seed=seed, max_rounds=200))
    result = game.run()
    assert result.converged
    assert game.is_nash_equilibrium()
    # potential decreased weakly and assignment is valid
    assert result.potential_trace[-1] <= result.potential_trace[0] + 1e-9
    assert (result.assignment >= 0).all() and (result.assignment < k).all()


class TestInitialAssignment:
    """Warm starts: the distributed coordinator's refinement entry point."""

    def test_equilibrium_warm_start_is_fixed_point(self):
        cg = crawl_cluster_graph(seed=3)
        first = ClusterPartitioningGame(cg, 4, GameConfig(seed=1)).run()
        refine = ClusterPartitioningGame(
            cg, 4, GameConfig(seed=1), initial_assignment=first.assignment
        ).run()
        assert refine.moves == 0
        assert refine.rounds == 1
        assert np.array_equal(refine.assignment, first.assignment)

    def test_warm_start_replaces_random_init(self):
        cg = crawl_cluster_graph(seed=3)
        init = np.zeros(cg.num_clusters, dtype=np.int64)
        game = ClusterPartitioningGame(cg, 4, initial_assignment=init)
        assert np.array_equal(game.assignment, init)
        assert game.assignment is not init  # defensive copy
        result = game.run()
        assert game.is_nash_equilibrium()
        assert result.converged

    def test_validates_initial_assignment(self):
        cg = crawl_cluster_graph(seed=3)
        with pytest.raises(ValueError, match="initial_assignment must map"):
            ClusterPartitioningGame(
                cg, 4, initial_assignment=np.zeros(1, dtype=np.int64)
            )
        with pytest.raises(ValueError, match="out of range"):
            ClusterPartitioningGame(
                cg, 4,
                initial_assignment=np.full(cg.num_clusters, 9, dtype=np.int64),
            )


class TestFrontierRestrictedRun:
    """run(active=...) — the incremental service's restricted game."""

    def test_active_all_is_bit_identical_to_full_run(self):
        cg = crawl_cluster_graph(seed=5)
        full = ClusterPartitioningGame(cg, 4, GameConfig(seed=2)).run()
        masked = ClusterPartitioningGame(cg, 4, GameConfig(seed=2)).run(
            active=np.ones(cg.num_clusters, dtype=bool)
        )
        assert np.array_equal(full.assignment, masked.assignment)
        assert full.moves == masked.moves
        assert full.rounds == masked.rounds
        assert full.potential_trace == masked.potential_trace

    def test_frozen_clusters_never_move(self):
        cg = crawl_cluster_graph(seed=5)
        rng = np.random.default_rng(0)
        init = rng.integers(0, 4, size=cg.num_clusters).astype(np.int64)
        active = np.zeros(cg.num_clusters, dtype=bool)
        active[:: 3] = True
        game = ClusterPartitioningGame(cg, 4, initial_assignment=init)
        result = game.run(active=active)
        frozen = ~active
        assert np.array_equal(result.assignment[frozen], init[frozen])

    def test_restricted_run_descends_potential_to_restricted_equilibrium(self):
        cg = crawl_cluster_graph(seed=5)
        rng = np.random.default_rng(1)
        init = rng.integers(0, 4, size=cg.num_clusters).astype(np.int64)
        active = np.zeros(cg.num_clusters, dtype=bool)
        active[: cg.num_clusters // 2] = True
        game = ClusterPartitioningGame(cg, 4, initial_assignment=init)
        result = game.run(active=active)
        trace = result.potential_trace
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))
        assert result.converged
        # equilibrium of the *restricted* game: no active player improves
        assert game.is_nash_equilibrium(active=active)

    def test_empty_active_set_is_a_noop(self):
        cg = crawl_cluster_graph(seed=5)
        init = np.zeros(cg.num_clusters, dtype=np.int64)
        game = ClusterPartitioningGame(cg, 4, initial_assignment=init)
        result = game.run(active=np.zeros(cg.num_clusters, dtype=bool))
        assert result.moves == 0
        assert np.array_equal(result.assignment, init)

    def test_validates_active_shape(self):
        cg = crawl_cluster_graph(seed=5)
        game = ClusterPartitioningGame(cg, 4, GameConfig(seed=0))
        with pytest.raises(ValueError, match="active mask"):
            game.run(active=np.ones(3, dtype=bool))
