"""Tests for the edge-stream model (Definition 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.stream import EdgeStream, StreamOrder


def make_stream():
    g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
    return EdgeStream.from_graph(g)


class TestConstruction:
    def test_basic(self):
        s = make_stream()
        assert s.num_edges == 5 and len(s) == 5

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError, match="out of range"):
            EdgeStream([0, 9], [1, 2], num_vertices=5)

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            EdgeStream([-1], [0], num_vertices=3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            EdgeStream([0, 1], [1], num_vertices=3)

    def test_empty_stream(self):
        s = EdgeStream([], [], num_vertices=0)
        assert s.num_edges == 0
        assert list(s) == []


class TestOrders:
    def test_natural_preserves_order(self):
        g = DiGraph([5, 3, 1], [4, 2, 0], num_vertices=6)
        s = EdgeStream.from_graph(g, order="natural")
        assert s.src.tolist() == [5, 3, 1]

    def test_random_is_permutation(self):
        g = DiGraph.from_edges([(i, i + 1) for i in range(50)])
        s = EdgeStream.from_graph(g, order="random", seed=3)
        assert sorted(zip(s.src.tolist(), s.dst.tolist())) == sorted(
            zip(g.src.tolist(), g.dst.tolist())
        )
        assert s.src.tolist() != g.src.tolist()

    def test_random_seeded_deterministic(self):
        g = DiGraph.from_edges([(i, i + 1) for i in range(50)])
        a = EdgeStream.from_graph(g, order="random", seed=7)
        b = EdgeStream.from_graph(g, order="random", seed=7)
        assert np.array_equal(a.src, b.src)

    def test_bfs_groups_source_edges(self):
        # path graph: BFS from 0 must order edges by distance from 0
        g = DiGraph.from_edges([(2, 3), (0, 1), (1, 2)])
        s = EdgeStream.from_graph(g, order="bfs", source=0)
        assert s.src.tolist() == [0, 1, 2]

    def test_dfs_order_valid_permutation(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (2, 3), (1, 3)])
        s = EdgeStream.from_graph(g, order="dfs", source=0)
        assert sorted(zip(s.src.tolist(), s.dst.tolist())) == sorted(
            zip(g.src.tolist(), g.dst.tolist())
        )

    def test_order_enum_accepts_strings(self):
        assert StreamOrder("bfs") is StreamOrder.BFS
        with pytest.raises(ValueError):
            StreamOrder("nope")

    def test_reordered(self):
        s = make_stream()
        r = s.reordered("random", seed=1)
        assert r.num_edges == s.num_edges
        assert sorted(zip(r.src.tolist(), r.dst.tolist())) == sorted(
            zip(s.src.tolist(), s.dst.tolist())
        )


class TestAccess:
    def test_iteration_yields_python_ints(self):
        for u, v in make_stream():
            assert isinstance(u, int) and isinstance(v, int)

    def test_batches_cover_stream(self):
        s = make_stream()
        chunks = list(s.batches(2))
        assert [c[0].size for c in chunks] == [2, 2, 1]
        rebuilt = np.concatenate([c[0] for c in chunks])
        assert np.array_equal(rebuilt, s.src)

    def test_batches_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            list(make_stream().batches(0))

    def test_to_graph_roundtrip(self):
        s = make_stream()
        g = s.to_graph()
        assert np.array_equal(g.src, s.src)
        assert g.num_vertices == s.num_vertices

    def test_active_vertices(self):
        s = EdgeStream([0], [2], num_vertices=5)
        assert s.active_vertices().tolist() == [0, 2]

    def test_degrees(self):
        s = make_stream()
        assert s.degrees().sum() == 2 * s.num_edges


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=50
    ),
    order=st.sampled_from(["natural", "random", "bfs", "dfs"]),
)
def test_property_every_order_is_permutation(edges, order):
    g = DiGraph.from_edges(edges)
    s = EdgeStream.from_graph(g, order=order, seed=0)
    assert s.num_edges == g.num_edges
    assert sorted(zip(s.src.tolist(), s.dst.tolist())) == sorted(
        zip(g.src.tolist(), g.dst.tolist())
    )
