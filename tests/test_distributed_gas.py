"""Distributed GAS on resident workers vs the local-runtime oracle.

:class:`~repro.distributed.gas.DistributedGasRuntime` must be a drop-in
for :class:`~repro.system.runtime.LocalGasRuntime` on dense-accumulator
programs: bit-identical values, identical superstep counts, and
*identical per-superstep message/byte counts* (the communication parity
contract) — while its compute/comm seconds are measured on real
processes and its ``wire_bytes`` reflects actual pipe traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import run_algorithm
from repro.distributed import DistributedGasRuntime, PersistentRuntime, leaked_segments
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.system import LocalGasRuntime
from repro.system.apps import (
    LocalConnectedComponentsProgram,
    LocalLabelPropagationProgram,
    LocalPageRankProgram,
    LocalSsspProgram,
)


@pytest.fixture(scope="module")
def gas_stream() -> EdgeStream:
    """~3.5K-edge crawl with edgeless vertices (unhosted-apply path)."""
    graph = web_crawl_graph(600, avg_out_degree=6.0, host_size=25, seed=11)
    return EdgeStream.from_graph(graph, order="natural")


@pytest.fixture(scope="module")
def gas_assignment(gas_stream):
    return run_algorithm("clugp", gas_stream, 4, seed=0)[1]


@pytest.fixture(scope="module")
def pool():
    with PersistentRuntime(3) as runtime:
        yield runtime


def _assert_parity(local_pair, dist_pair):
    """values bit-identical; per-superstep messages/bytes equal."""
    local_values, local_cost = local_pair
    dist_values, dist_cost = dist_pair
    assert local_values.dtype == dist_values.dtype
    equal_nan = np.issubdtype(local_values.dtype, np.floating)
    assert np.array_equal(local_values, dist_values, equal_nan=equal_nan)
    assert dist_cost.num_supersteps == local_cost.num_supersteps
    for ref, got in zip(local_cost.supersteps, dist_cost.supersteps):
        assert got.messages == ref.messages
        assert got.bytes == ref.bytes
        assert got.active_vertices == ref.active_vertices
        assert got.active_edges == ref.active_edges


class TestOracleParity:
    def test_pagerank_bit_identical(self, gas_assignment, pool):
        local = LocalGasRuntime(gas_assignment).run(
            LocalPageRankProgram(), max_supersteps=40
        )
        dist = DistributedGasRuntime(gas_assignment, pool).run(
            LocalPageRankProgram(), max_supersteps=40
        )
        _assert_parity(local, dist)

    def test_sssp_bit_identical(self, gas_assignment, gas_stream, pool):
        source = int(np.bincount(gas_stream.src).argmax())
        local = LocalGasRuntime(gas_assignment).run(LocalSsspProgram(source))
        dist = DistributedGasRuntime(gas_assignment, pool).run(
            LocalSsspProgram(source)
        )
        _assert_parity(local, dist)

    def test_connected_components_bit_identical(self, gas_assignment, pool):
        local = LocalGasRuntime(gas_assignment).run(
            LocalConnectedComponentsProgram()
        )
        dist = DistributedGasRuntime(gas_assignment, pool).run(
            LocalConnectedComponentsProgram()
        )
        _assert_parity(local, dist)

    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_worker_count_does_not_change_bits(self, gas_assignment, num_workers):
        local = LocalGasRuntime(gas_assignment).run(
            LocalPageRankProgram(), max_supersteps=40
        )
        before = set(leaked_segments())  # the module pool's live segments
        with PersistentRuntime(num_workers) as runtime:
            dist = DistributedGasRuntime(gas_assignment, runtime).run(
                LocalPageRankProgram(), max_supersteps=40
            )
        _assert_parity(local, dist)
        assert set(leaked_segments()) == before


class TestRuntimeBehaviour:
    def test_measured_wire_bytes_positive(self, gas_assignment, pool):
        runtime = DistributedGasRuntime(gas_assignment, pool)
        runtime.run(LocalPageRankProgram(), max_supersteps=5)
        assert runtime.wire_bytes > 0
        assert runtime.setup_seconds > 0.0

    def test_costs_are_measured_not_modeled(self, gas_assignment, pool):
        _, cost = DistributedGasRuntime(gas_assignment, pool).run(
            LocalPageRankProgram(), max_supersteps=5
        )
        for superstep in cost.supersteps:
            assert superstep.compute_seconds > 0.0
            assert superstep.comm_seconds >= 0.0

    def test_ragged_program_rejected(self, gas_assignment, pool):
        with pytest.raises(ValueError, match="dense accumulators"):
            DistributedGasRuntime(gas_assignment, pool).run(
                LocalLabelPropagationProgram()
            )

    def test_partition_ownership_covers_all(self, gas_assignment, pool):
        runtime = DistributedGasRuntime(gas_assignment, pool)
        owned = sorted(
            pid
            for worker in range(pool.num_workers)
            for pid in runtime._owned_pids(worker)
        )
        assert owned == list(range(gas_assignment.num_partitions))

    def test_partitioning_and_app_share_one_pool(self, gas_stream):
        """The end-to-end story: partition on the pool, run the app on it."""
        from repro.core.distributed import distributed_clugp

        before = set(leaked_segments())  # the module pool's live segments
        with PersistentRuntime(3) as runtime:
            result = distributed_clugp(
                gas_stream, 4, num_nodes=3, seed=0, backend="persistent",
                runtime=runtime,
            )
            local = LocalGasRuntime(result.assignment).run(
                LocalPageRankProgram(), max_supersteps=40
            )
            dist = DistributedGasRuntime(result.assignment, runtime).run(
                LocalPageRankProgram(), max_supersteps=40
            )
            _assert_parity(local, dist)
        assert set(leaked_segments()) == before
