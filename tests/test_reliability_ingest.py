"""Hardened ingestion: typed errors in strict mode, counted drops in lenient."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.io import (
    read_edgelist,
    read_edges_binary,
    read_npz,
    write_edgelist,
    write_edges_binary,
    write_npz,
)
from repro.graph.stream import EdgeStream
from repro.reliability.ingest import (
    DropReport,
    EdgeOverflowError,
    IngestError,
    MalformedEdgeError,
    TruncatedPayloadError,
    VertexRangeError,
    sanitize_edges,
)


class TestSanitizeStrict:
    def test_clean_int64_passthrough(self):
        u = np.array([0, 1, 2], dtype=np.int64)
        v = np.array([1, 2, 0], dtype=np.int64)
        su, sv, report = sanitize_edges(u, v, num_vertices=3)
        assert su is u and sv is v  # fast path: no copy
        assert report.kept == 3 and report.total_dropped == 0

    def test_negative_id(self):
        with pytest.raises(VertexRangeError, match="negative"):
            sanitize_edges([0, -1], [1, 1])

    def test_out_of_range_id(self):
        with pytest.raises(VertexRangeError, match="out of range"):
            sanitize_edges([0, 5], [1, 1], num_vertices=3)

    def test_nan_row(self):
        with pytest.raises(MalformedEdgeError, match="non-finite"):
            sanitize_edges([0.0, float("nan")], [1.0, 1.0])

    def test_inf_row(self):
        with pytest.raises(MalformedEdgeError, match="non-finite"):
            sanitize_edges([0.0, float("inf")], [1.0, 1.0])

    def test_fractional_float(self):
        with pytest.raises(MalformedEdgeError, match="non-integral"):
            sanitize_edges([0.0, 1.5], [1.0, 1.0])

    def test_float_past_int64(self):
        with pytest.raises(EdgeOverflowError, match="int64"):
            sanitize_edges([0.0, 1e30], [1.0, 1.0])

    def test_uint64_overflow(self):
        huge = np.array([0, 2**63], dtype=np.uint64)
        with pytest.raises(EdgeOverflowError, match="int64"):
            sanitize_edges(huge, np.zeros(2, dtype=np.uint64))

    def test_python_int_overflow(self):
        with pytest.raises(EdgeOverflowError, match="int64"):
            sanitize_edges(np.array([0, 2**70], dtype=object), [1, 1])

    def test_non_numeric_object(self):
        with pytest.raises(MalformedEdgeError, match="non-integer"):
            sanitize_edges(np.array(["a", "1"], dtype=object), [1, 1])

    def test_shape_mismatch(self):
        with pytest.raises(MalformedEdgeError, match="equal length"):
            sanitize_edges([0, 1], [1])

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be"):
            sanitize_edges([0], [1], mode="casual")

    def test_typed_errors_are_value_errors(self):
        # existing callers catching ValueError keep working
        assert issubclass(IngestError, ValueError)
        for exc in (MalformedEdgeError, VertexRangeError, EdgeOverflowError,
                    TruncatedPayloadError):
            assert issubclass(exc, IngestError)


class TestSanitizeLenient:
    def test_drops_are_counted_per_reason(self):
        u = [0.0, float("nan"), 2.0, -1.0, 9.0]
        v = [1.0, 1.0, 1.5, 1.0, 1.0]
        su, sv, report = sanitize_edges(u, v, num_vertices=5, mode="lenient")
        assert np.array_equal(su, [0]) and np.array_equal(sv, [1])
        assert report.kept == 1
        assert report.dropped["non_finite"] == 1
        assert report.dropped["non_integral"] == 1
        assert report.dropped["negative"] == 1
        assert report.dropped["out_of_range"] == 1

    def test_edge_dropped_when_either_endpoint_bad(self):
        su, sv, report = sanitize_edges([0, 1], [float("nan"), 1.0],
                                        mode="lenient")
        assert report.kept == 1
        assert np.array_equal(su, [1])

    def test_report_merge(self):
        a = DropReport(kept=2, dropped={"negative": 1})
        b = DropReport(kept=3, dropped={"negative": 2, "overflow": 1})
        a.merge(b)
        assert a.kept == 5
        assert a.dropped == {"negative": 3, "overflow": 1}
        assert a.to_dict()["total_dropped"] == 4

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=-5, max_value=30),
                st.floats(allow_nan=True, allow_infinity=True, width=32),
            ),
            min_size=0,
            max_size=40,
        )
    )
    def test_lenient_never_raises_and_accounts_every_row(self, raw):
        u = np.array(raw, dtype=object)
        v = np.array(raw[::-1], dtype=object)
        su, sv, report = sanitize_edges(u, v, num_vertices=20, mode="lenient")
        assert su.size == sv.size == report.kept
        assert report.kept <= len(raw)
        assert su.dtype == np.int64
        if su.size:
            assert su.min() >= 0 and su.max() < 20
            assert sv.min() >= 0 and sv.max() < 20


class TestEdgeStreamHardening:
    def test_out_of_range_is_typed(self):
        with pytest.raises(VertexRangeError):
            EdgeStream([0, 9], [1, 1], 5)

    def test_negative_is_typed(self):
        with pytest.raises(VertexRangeError):
            EdgeStream([0, -2], [1, 1], 5)

    def test_typed_error_still_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            EdgeStream([0, 9], [1, 1], 5)

    def test_sanitized_constructor(self):
        stream, report = EdgeStream.sanitized(
            [0.0, float("nan"), 2.0], [1, 1, 3], 5
        )
        assert stream.num_edges == 2
        assert report.dropped == {"non_finite": 1}


@pytest.fixture
def graph():
    return DiGraph(
        np.array([0, 1, 2, 3], dtype=np.int64),
        np.array([1, 2, 3, 0], dtype=np.int64),
        5,
    )


class TestEdgelistHardening:
    def test_strict_names_file_and_line(self, tmp_path, graph):
        path = tmp_path / "g.txt"
        write_edgelist(graph, path)
        with open(path, "a") as f:
            f.write("not numbers\n")
        with pytest.raises(MalformedEdgeError, match=r"g\.txt:6"):
            read_edgelist(path)

    def test_lenient_drops_and_counts(self, tmp_path, graph):
        path = tmp_path / "g.txt"
        write_edgelist(graph, path)
        with open(path, "a") as f:
            f.write("garbage\n7\n-3 2\n")
        report = DropReport()
        loaded = read_edgelist(path, mode="lenient", report=report)
        assert loaded.num_edges == 4
        assert report.dropped == {"malformed": 2, "negative": 1}

    def test_huge_textual_id_is_typed_not_traceback(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(f"0 1\n2 {2**70}\n")
        with pytest.raises(EdgeOverflowError):
            read_edgelist(path)
        loaded = read_edgelist(path, mode="lenient")
        assert loaded.num_edges == 1

    def test_binary_junk_does_not_crash(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes(bytes(range(256)))
        with pytest.raises((MalformedEdgeError, ValueError)):
            read_edgelist(path)


class TestBinaryEdges:
    def test_round_trip(self, tmp_path, graph):
        path = tmp_path / "g.bin"
        write_edges_binary(graph, path)
        loaded = read_edges_binary(path)
        assert np.array_equal(loaded.src, graph.src)
        assert np.array_equal(loaded.dst, graph.dst)
        assert loaded.num_vertices == graph.num_vertices

    def test_empty_graph_round_trip(self, tmp_path):
        empty = DiGraph(np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int64), 3)
        path = tmp_path / "e.bin"
        write_edges_binary(empty, path)
        loaded = read_edges_binary(path)
        assert loaded.num_edges == 0 and loaded.num_vertices == 3

    def test_truncation_strict(self, tmp_path, graph):
        path = tmp_path / "g.bin"
        write_edges_binary(graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 20])
        with pytest.raises(TruncatedPayloadError, match="declares"):
            read_edges_binary(path)

    def test_truncation_lenient_keeps_prefix(self, tmp_path, graph):
        path = tmp_path / "g.bin"
        write_edges_binary(graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 20])
        report = DropReport()
        loaded = read_edges_binary(path, mode="lenient", report=report)
        assert loaded.num_edges == 3  # the torn 4th edge is gone
        assert np.array_equal(loaded.src, graph.src[:3])
        assert report.dropped == {"truncated": 1}

    def test_crc_corruption_strict(self, tmp_path, graph):
        path = tmp_path / "g.bin"
        write_edges_binary(graph, path)
        raw = bytearray(path.read_bytes())
        raw[30] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(TruncatedPayloadError, match="CRC"):
            read_edges_binary(path)

    def test_bad_magic(self, tmp_path, graph):
        path = tmp_path / "g.bin"
        write_edges_binary(graph, path)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(MalformedEdgeError, match="magic"):
            read_edges_binary(path)


class TestNpzHardening:
    def test_truncated_archive_is_typed(self, tmp_path, graph):
        path = tmp_path / "g.npz"
        write_npz(graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(TruncatedPayloadError, match="npz"):
            read_npz(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_npz(tmp_path / "nope.npz")

    def test_intact_archive_unaffected(self, tmp_path, graph):
        path = tmp_path / "g.npz"
        write_npz(graph, path)
        loaded = read_npz(path)
        assert np.array_equal(loaded.src, graph.src)
