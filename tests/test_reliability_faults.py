"""Deterministic fault injection: pure decisions, spec parsing, corruption."""

import numpy as np
import pytest

from repro.reliability.faults import (
    ENV_SPEC,
    FAULT_KINDS,
    FaultInjector,
    FaultSpecError,
    InjectedCrash,
    _corrupt_result,
)


class TestDecide:
    def test_pure_function(self):
        inj = FaultInjector(kinds=("crash", "hang"), seed=7)
        first = [inj.decide("stage1", n, 8, 0) for n in range(8)]
        second = [inj.decide("stage1", n, 8, 0) for n in range(8)]
        assert first == second

    def test_exactly_one_victim_per_stage(self):
        inj = FaultInjector(kinds=("crash",), seed=3)
        for stage in ("shard", "probe", "commit"):
            decisions = [inj.decide(stage, n, 6, 0) for n in range(6)]
            assert sum(d is not None for d in decisions) == 1

    def test_kind_drawn_from_enabled_set(self):
        for seed in range(20):
            inj = FaultInjector(kinds=("slow", "corrupt"), seed=seed)
            kinds = {inj.decide("s", n, 4, 0) for n in range(4)} - {None}
            assert kinds <= {"slow", "corrupt"}

    def test_seed_sweep_reaches_every_kind(self):
        seen = set()
        for seed in range(64):
            inj = FaultInjector(kinds=FAULT_KINDS, seed=seed)
            seen |= {inj.decide("s", n, 4, 0) for n in range(4)} - {None}
        assert seen == set(FAULT_KINDS)

    def test_attempt_past_zero_is_fault_free(self):
        inj = FaultInjector(kinds=("crash",), seed=1)
        assert any(inj.decide("s", n, 4, 0) for n in range(4))
        assert all(inj.decide("s", n, 4, 1) is None for n in range(4))

    def test_persist_keeps_firing(self):
        inj = FaultInjector(kinds=("crash",), seed=1, persist=True)
        for attempt in range(4):
            assert any(inj.decide("s", n, 4, attempt) for n in range(4))

    def test_no_nodes_no_fault(self):
        inj = FaultInjector(kinds=("crash",), seed=1)
        assert inj.decide("s", 0, 0, 0) is None

    def test_different_stages_can_pick_different_victims(self):
        inj = FaultInjector(kinds=("crash",), seed=0)
        victims = set()
        for stage in ("a", "b", "c", "d", "e", "f", "g", "h"):
            (victim,) = [
                n for n in range(16) if inj.decide(stage, n, 16, 0) is not None
            ]
            victims.add(victim)
        assert len(victims) > 1


class TestSpec:
    def test_parse_kinds_and_options(self):
        inj = FaultInjector.from_spec(
            "crash, hang ,seed=7,hang_seconds=2.5,persist", honor_env=False
        )
        assert inj.kinds == ("crash", "hang")
        assert inj.seed == 7
        assert inj.hang_seconds == 2.5
        assert inj.persist is True

    def test_empty_spec_means_no_injection(self):
        assert FaultInjector.from_spec(None, honor_env=False) is None
        assert FaultInjector.from_spec("", honor_env=False) is None

    def test_unknown_kind_raises(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            FaultInjector.from_spec("segfault", honor_env=False)

    def test_unknown_option_raises(self):
        with pytest.raises(FaultSpecError, match="unknown fault option"):
            FaultInjector.from_spec("crash,color=red", honor_env=False)

    def test_bad_value_raises(self):
        with pytest.raises(FaultSpecError, match="bad value"):
            FaultInjector.from_spec("crash,seed=banana", honor_env=False)

    def test_options_without_kinds_raise(self):
        with pytest.raises(FaultSpecError, match="names no fault kinds"):
            FaultInjector.from_spec("seed=3", honor_env=False)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_SPEC, "slow,seed=9")
        inj = FaultInjector.from_spec("crash", honor_env=True)
        assert inj.kinds == ("slow",)
        assert inj.seed == 9

    def test_env_ignored_when_not_honored(self, monkeypatch):
        monkeypatch.setenv(ENV_SPEC, "slow")
        inj = FaultInjector.from_spec("crash", honor_env=False)
        assert inj.kinds == ("crash",)

    def test_describe_names_kinds_and_seed(self):
        inj = FaultInjector.from_spec("crash,seed=5", honor_env=False)
        text = inj.describe()
        assert "crash" in text and "seed=5" in text


class _Summary:
    """Minimal stand-in for a checksummed wire payload."""

    def __init__(self):
        self.checksum = 1234
        self.volume = np.arange(4, dtype=np.int64)


class TestEffects:
    def test_crash_raises_in_thread_mode(self):
        inj = FaultInjector(kinds=("crash",), seed=1)
        (victim,) = [n for n in range(4) if inj.decide("s", n, 4, 0)]
        with pytest.raises(InjectedCrash):
            inj.pre_task("s", victim, 4, 0, in_process=False)

    def test_non_victims_untouched(self):
        inj = FaultInjector(kinds=("crash",), seed=1)
        (victim,) = [n for n in range(4) if inj.decide("s", n, 4, 0)]
        for n in range(4):
            if n != victim:
                inj.pre_task("s", n, 4, 0, in_process=False)  # must not raise

    def test_corrupt_flips_bytes_after_checksum(self):
        payload = _Summary()
        before = payload.volume.copy()
        _corrupt_result((0, payload, "extra"))
        assert not np.array_equal(payload.volume, before)
        assert payload.checksum == 1234  # stale on purpose: wire corruption

    def test_corrupt_ignores_unchecksummed_results(self):
        data = np.arange(4, dtype=np.int64)
        before = data.copy()
        _corrupt_result((0, data))
        assert np.array_equal(data, before)

    def test_injector_is_picklable(self):
        import pickle

        inj = FaultInjector(kinds=("crash", "corrupt"), seed=11)
        assert pickle.loads(pickle.dumps(inj)) == inj
