"""Shared fixtures: small deterministic graphs and streams.

Also pins a deterministic hypothesis profile (fixed derandomized seed,
no deadline) so property tests never flake on a loaded CI worker and a
failure reproduces bit-identically from the printed example.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from hypothesis import settings

    settings.register_profile(
        "deterministic", derandomize=True, deadline=None, print_blob=True
    )
    settings.load_profile("deterministic")
except ImportError:  # pragma: no cover - hypothesis not installed
    pass

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    planted_partition_graph,
    star_graph,
    web_crawl_graph,
)
from repro.graph.stream import EdgeStream


@pytest.fixture(scope="session")
def tiny_graph() -> DiGraph:
    """The 7-vertex example of the paper's Figure 1."""
    edges = [(0, 1), (0, 2), (1, 2), (0, 3), (3, 5), (5, 6), (3, 6), (0, 4)]
    return DiGraph.from_edges(edges)


@pytest.fixture(scope="session")
def crawl_graph() -> DiGraph:
    """A ~12K-edge synthetic web crawl (session-cached for speed)."""
    return web_crawl_graph(
        1200, avg_out_degree=10.0, host_size=30, intra_host_prob=0.88, seed=5
    )


@pytest.fixture(scope="session")
def crawl_stream(crawl_graph) -> EdgeStream:
    return EdgeStream.from_graph(crawl_graph, order="natural")


@pytest.fixture(scope="session")
def community_graph() -> DiGraph:
    return planted_partition_graph(12, 40, p_in=0.2, p_out=0.004, seed=9)


@pytest.fixture(scope="session")
def random_graph() -> DiGraph:
    return erdos_renyi_graph(400, 3000, seed=13)


@pytest.fixture(scope="session")
def hub_graph() -> DiGraph:
    return star_graph(200)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
