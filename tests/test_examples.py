"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor: quickstart + 2 scenarios
