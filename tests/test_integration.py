"""Cross-module integration tests: every partitioner on every graph family,
plus the paper's headline quality claims at bench scale.
"""

import numpy as np
import pytest

from repro import (
    EdgeStream,
    compare_partitioners,
    load_dataset,
    make_partitioner,
)
from repro.graph.generators import (
    erdos_renyi_graph,
    planted_partition_graph,
    star_graph,
)
from repro.system import GasEngine, pagerank

ALL_ALGORITHMS = [
    "hashing",
    "dbh",
    "greedy",
    "hdrf",
    "mint",
    "clugp",
    "clugp-s",
    "clugp-g",
    "minimetis",
]


def graph_families():
    return {
        "web": load_dataset("uk", scale=0.05, seed=1),
        "social": load_dataset("twitter", scale=0.05, seed=1),
        "random": erdos_renyi_graph(300, 2500, seed=1),
        "community": planted_partition_graph(8, 40, p_in=0.15, p_out=0.01, seed=1),
        "star": star_graph(300),
    }


@pytest.mark.parametrize("family", sorted(graph_families()))
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_every_partitioner_on_every_family(family, algorithm):
    graph = graph_families()[family]
    stream = EdgeStream.from_graph(graph, order="natural")
    partitioner = make_partitioner(algorithm, 8, seed=0)
    if partitioner.preferred_order != "natural":
        stream = stream.reordered(partitioner.preferred_order, seed=0)
    assignment = partitioner.partition(stream)
    # universal invariants of a vertex-cut partitioning (Problem 1)
    assert assignment.edge_partition.shape == (stream.num_edges,)
    assert assignment.edge_partition.min() >= 0
    assert assignment.edge_partition.max() < 8
    assert assignment.partition_sizes().sum() == stream.num_edges
    assert assignment.replication_factor() >= 1.0
    counts = assignment.vertex_partition_counts()
    assert counts.max() <= 8


class TestHeadlineClaims:
    """The paper's main quality orderings at a small but non-trivial scale."""

    @pytest.fixture(scope="class")
    def table(self):
        graph = load_dataset("uk", scale=0.15, seed=2)
        stream = EdgeStream.from_graph(graph, order="natural")
        parts = [
            make_partitioner(n, 16, seed=0)
            for n in ("hashing", "dbh", "greedy", "hdrf", "mint", "clugp")
        ]
        return compare_partitioners(parts, stream)

    def test_clugp_has_lowest_replication_factor(self, table):
        assert table.best_by_replication().algorithm == "clugp"

    def test_hashing_has_highest_replication_factor(self, table):
        worst = max(table.reports, key=lambda r: r.replication_factor)
        assert worst.algorithm == "hashing"

    def test_table1_quality_classes(self, table):
        # Table I: {Greedy, HDRF, CLUGP} high quality; {Hashing, DBH} low;
        # Mint in between
        rf = {r.algorithm: r.replication_factor for r in table.reports}
        assert rf["clugp"] < rf["mint"] < rf["hashing"]
        assert rf["hdrf"] < rf["dbh"]
        assert rf["greedy"] < rf["dbh"]

    def test_all_balanced_within_tau(self, table):
        for report in table.reports:
            assert report.relative_balance <= 1.5

    def test_clugp_is_faster_than_hdrf(self, table):
        # Figure 10: the three-pass CLUGP beats the one-pass heuristics on
        # total runtime because it never scores all k partitions per edge
        assert table.get("clugp").runtime_seconds < table.get("hdrf").runtime_seconds


class TestEndToEndSystem:
    def test_partition_then_pagerank_consistency(self):
        graph = load_dataset("webbase", scale=0.05, seed=3)
        stream = EdgeStream.from_graph(graph, order="natural")
        ranks = {}
        for name in ("hashing", "clugp"):
            partitioner = make_partitioner(name, 4, seed=0)
            s = stream
            if partitioner.preferred_order != "natural":
                s = stream.reordered(partitioner.preferred_order, seed=0)
            assignment = partitioner.partition(s)
            values, cost = pagerank(GasEngine(assignment), max_supersteps=20)
            ranks[name] = values
            assert cost.total_messages > 0
        # algorithm values are partitioning-invariant
        assert np.allclose(ranks["hashing"], ranks["clugp"])

    def test_better_partitioning_less_communication(self):
        graph = load_dataset("it", scale=0.1, seed=4)
        stream = EdgeStream.from_graph(graph, order="natural")
        volumes = {}
        for name in ("hashing", "clugp"):
            partitioner = make_partitioner(name, 16, seed=0)
            s = stream
            if partitioner.preferred_order != "natural":
                s = stream.reordered(partitioner.preferred_order, seed=0)
            assignment = partitioner.partition(s)
            _, cost = pagerank(GasEngine(assignment), max_supersteps=10)
            volumes[name] = cost.total_bytes
        assert volumes["clugp"] < volumes["hashing"]
