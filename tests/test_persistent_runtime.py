"""Persistent worker runtime (PR 10): lifecycle, identity, chaos, pipeline.

Acceptance gates covered here:

* ``backend="persistent"`` is bit-identical to the ``process`` oracle for
  both merge modes at num_nodes in {1, 4, 8};
* the incremental merge folds summaries in *any* arrival permutation and
  still reproduces the batch merge bit for bit (hypothesis sweep);
* zero pickled ndarray bytes ever cross the ingest plane;
* every shared-memory segment is unlinked on close — including after
  injected worker crashes (``/dev/shm`` cleanliness);
* resident workers survive across calls (same PIDs, same bits).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClugpConfig, ReliabilityConfig
from repro.core.distributed import (
    DistributedClugpPartitioner,
    IncrementalMerger,
    _boundary_mask,
    _cluster_stage_worker,
    _merge_summaries,
    _shard_ranges,
    distributed_clugp,
)
from repro.distributed import (
    EdgeChunkRing,
    PersistentRuntime,
    RingWriter,
    leaked_segments,
    ndarray_nbytes,
)
from repro.distributed.shm import create_segment, unlink_segment
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream


@pytest.fixture(scope="module")
def ident_stream() -> EdgeStream:
    """~3.2K-edge crawl used for the process-vs-persistent identity matrix."""
    graph = web_crawl_graph(400, avg_out_degree=8.0, host_size=25, seed=3)
    return EdgeStream.from_graph(graph, order="natural")


def _assert_shm_clean() -> None:
    assert leaked_segments() == [], "shared-memory segments leaked into /dev/shm"


# --------------------------------------------------------------------- #
# shm primitives
# --------------------------------------------------------------------- #


class TestShmPrimitives:
    def test_ring_write_read_roundtrip(self):
        shm = create_segment(EdgeChunkRing.nbytes(8, 2))
        try:
            ring = EdgeChunkRing(shm, slot_edges=8, slots=2)
            src = np.arange(5, dtype=np.int64)
            dst = np.arange(5, dtype=np.int64) * 7
            assert ring.write(1, src, dst) == 5
            got_src, got_dst = ring.read(1, 5)
            assert np.array_equal(got_src, src)
            assert np.array_equal(got_dst, dst)
        finally:
            unlink_segment(shm)
        _assert_shm_clean()

    def test_ring_rejects_oversized_chunk(self):
        shm = create_segment(EdgeChunkRing.nbytes(4, 1))
        try:
            ring = EdgeChunkRing(shm, slot_edges=4, slots=1)
            with pytest.raises(ValueError, match="exceeds slot capacity"):
                ring.write(0, np.zeros(5, dtype=np.int64), np.zeros(5, dtype=np.int64))
        finally:
            unlink_segment(shm)

    def test_writer_blocks_only_when_ring_full(self):
        shm = create_segment(EdgeChunkRing.nbytes(4, 2))
        try:
            ring = EdgeChunkRing(shm, slot_edges=4, slots=2)
            writer = RingWriter(ring)
            acks: list[int] = []

            def wait_ack():
                acks.append(writer._in_flight[0])
                return acks[-1]

            assert writer.next_slot(wait_ack) == 0
            assert writer.next_slot(wait_ack) == 1
            assert acks == []  # ring not yet full: no blocking
            assert writer.next_slot(wait_ack) == 0  # full: drains one ack
            assert acks == [0]
            assert writer.in_flight == 2
        finally:
            unlink_segment(shm)

    def test_writer_rejects_out_of_order_ack(self):
        shm = create_segment(EdgeChunkRing.nbytes(4, 3))
        try:
            writer = RingWriter(EdgeChunkRing(shm, slot_edges=4, slots=3))
            writer.next_slot(lambda: 0)
            writer.next_slot(lambda: 0)
            with pytest.raises(RuntimeError, match="out-of-order"):
                writer.ack(1)
        finally:
            unlink_segment(shm)

    def test_ndarray_nbytes_walks_containers(self):
        msg = {
            "a": np.zeros(4, dtype=np.int64),
            "b": [np.zeros(2, dtype=np.float64), "text", 7],
            "c": {"d": (np.zeros(1, dtype=np.int8),)},
        }
        assert ndarray_nbytes(msg) == 32 + 16 + 1
        assert ndarray_nbytes({"op": "chunk", "slot": 3, "length": 100}) == 0


# --------------------------------------------------------------------- #
# runtime lifecycle
# --------------------------------------------------------------------- #


class TestRuntimeLifecycle:
    def test_context_manager_unlinks_all_segments(self):
        with PersistentRuntime(3, slot_edges=64, ring_slots=2) as runtime:
            assert len(leaked_segments()) == 3
            for worker in range(3):
                assert runtime.call(worker, {"op": "ping"}) == "pong"
        _assert_shm_clean()

    def test_close_is_idempotent(self):
        runtime = PersistentRuntime(2, slot_edges=64)
        runtime.close()
        runtime.close()
        _assert_shm_clean()

    def test_feed_shard_keeps_edge_plane_pickle_free(self):
        with PersistentRuntime(1, slot_edges=16, ring_slots=2) as runtime:
            rng = np.random.default_rng(0)
            src = rng.integers(0, 50, size=100)
            dst = rng.integers(0, 50, size=100)
            runtime.feed_shard(0, src, dst, 50)
            assert runtime.edge_pickle_bytes == 0
        _assert_shm_clean()

    def test_worker_error_reply_raises_with_traceback(self):
        with PersistentRuntime(1) as runtime:
            with pytest.raises(RuntimeError, match="transform before summary"):
                runtime.call(0, {"op": "probe", "offset": 0})
        _assert_shm_clean()


# --------------------------------------------------------------------- #
# bit-identity against the process oracle
# --------------------------------------------------------------------- #


class TestProcessParity:
    """The acceptance matrix: persistent == process, bit for bit."""

    @pytest.mark.parametrize("merge_mode", ["merged", "independent"])
    @pytest.mark.parametrize("num_nodes", [1, 4, 8])
    def test_bit_identical_to_process(self, ident_stream, merge_mode, num_nodes):
        reference = distributed_clugp(
            ident_stream, 8, num_nodes=num_nodes, seed=0,
            merge_mode=merge_mode, backend="process",
        )
        result = distributed_clugp(
            ident_stream, 8, num_nodes=num_nodes, seed=0,
            merge_mode=merge_mode, backend="persistent",
        )
        assert np.array_equal(
            reference.assignment.edge_partition, result.assignment.edge_partition
        )
        _assert_shm_clean()

    def test_node_reports_match_process(self, ident_stream):
        reference = distributed_clugp(
            ident_stream, 8, num_nodes=4, seed=0, backend="process"
        )
        result = distributed_clugp(
            ident_stream, 8, num_nodes=4, seed=0, backend="persistent"
        )
        for ref, got in zip(reference.nodes, result.nodes):
            assert (ref.node, ref.num_edges, ref.num_clusters, ref.splits) == (
                got.node, got.num_edges, got.num_clusters, got.splits
            )

    def test_runtime_rejected_on_other_backends(self, ident_stream):
        with PersistentRuntime(2) as runtime:
            with pytest.raises(ValueError, match="persistent"):
                distributed_clugp(
                    ident_stream, 4, num_nodes=2, backend="thread", runtime=runtime
                )
        _assert_shm_clean()

    def test_runtime_size_mismatch_raises(self, ident_stream):
        with PersistentRuntime(2) as runtime:
            with pytest.raises(ValueError, match="workers"):
                distributed_clugp(
                    ident_stream, 4, num_nodes=3, backend="persistent",
                    runtime=runtime,
                )
        _assert_shm_clean()


class TestResidentReuse:
    def test_same_workers_same_bits_across_calls(self, ident_stream):
        with PersistentRuntime(3) as runtime:
            pids = [h.process.pid for h in runtime.workers]
            first = distributed_clugp(
                ident_stream, 8, num_nodes=3, seed=0, backend="persistent",
                runtime=runtime,
            )
            second = distributed_clugp(
                ident_stream, 8, num_nodes=3, seed=0, backend="persistent",
                runtime=runtime,
            )
            assert [h.process.pid for h in runtime.workers] == pids
            assert np.array_equal(
                first.assignment.edge_partition, second.assignment.edge_partition
            )
            assert runtime.edge_pickle_bytes == 0
        _assert_shm_clean()

    def test_partitioner_facade_owns_resident_pool(self, ident_stream):
        with DistributedClugpPartitioner(
            8, num_nodes=3, seed=0, backend="persistent"
        ) as partitioner:
            first = partitioner.partition(ident_stream)
            runtime = partitioner._runtime
            assert runtime is not None
            pids = [h.process.pid for h in runtime.workers]
            second = partitioner.partition(ident_stream)
            assert partitioner._runtime is runtime
            assert [h.process.pid for h in runtime.workers] == pids
            assert np.array_equal(first.edge_partition, second.edge_partition)
        _assert_shm_clean()

    def test_zero_pickle_gate_in_result_counters(self, ident_stream):
        result = distributed_clugp(
            ident_stream, 8, num_nodes=3, seed=0, backend="persistent"
        )
        # bump() drops zero counts, so absence of the audit counter IS the
        # zero-copy gate: any pickled ndarray on the ingest plane would
        # surface a positive edge_pickle_bytes here
        assert result.to_dict()["reliability"].get("edge_pickle_bytes", 0) == 0


# --------------------------------------------------------------------- #
# pipeline accounting
# --------------------------------------------------------------------- #


class TestPipelineAccounting:
    def test_overlap_and_busy_idle_surfaced(self, ident_stream):
        result = distributed_clugp(
            ident_stream, 8, num_nodes=4, seed=0, merge_mode="merged",
            backend="persistent",
        )
        overlaps = result.to_dict()["stage_overlaps"]
        assert "pipeline_overlap" in overlaps
        assert overlaps["pipeline_overlap"] >= 0.0
        for node in range(4):
            assert overlaps[f"node{node}_busy"] >= 0.0
            assert overlaps[f"node{node}_idle"] >= 0.0
        assert "pipeline" in result.summary()

    def test_overlaps_never_inflate_critical_path(self, ident_stream):
        result = distributed_clugp(
            ident_stream, 8, num_nodes=4, seed=0, merge_mode="merged",
            backend="persistent",
        )
        times = result.assignment.stage_times
        assert times.critical_path == pytest.approx(times.walls["critical_path"])
        assert sum(times.overlaps.values()) >= 0.0


# --------------------------------------------------------------------- #
# chaos: crash/hang/corrupt on resident workers
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def chaos_stream() -> EdgeStream:
    graph = web_crawl_graph(300, avg_out_degree=7.0, host_size=20, seed=9)
    return EdgeStream.from_graph(graph, order="natural")


def _run_persistent(stream, spec, timeout=None, merge_mode="merged"):
    reliability = ReliabilityConfig(
        inject_faults=spec, task_timeout=timeout,
        backoff_base=0.0, backoff_max=0.0,
    )
    cfg = ClugpConfig(num_partitions=4, reliability=reliability)
    return distributed_clugp(
        stream, 4, num_nodes=3, config=cfg, seed=0, merge_mode=merge_mode,
        backend="persistent",
    )


class TestPersistentChaos:
    """Injected faults hit real resident processes; bits must not move."""

    def test_injected_crash_respawns_bit_identical(self, chaos_stream):
        baseline = _run_persistent(chaos_stream, "")
        chaotic = _run_persistent(chaos_stream, "crash,seed=1")
        assert np.array_equal(
            baseline.assignment.edge_partition, chaotic.assignment.edge_partition
        )
        assert chaotic.to_dict()["reliability"].get("retries", 0) >= 1
        _assert_shm_clean()

    def test_hang_timeout_respawns_bit_identical(self, chaos_stream):
        baseline = _run_persistent(chaos_stream, "")
        chaotic = _run_persistent(
            chaos_stream, "hang,seed=0,hang_seconds=30", timeout=2.0
        )
        assert np.array_equal(
            baseline.assignment.edge_partition, chaotic.assignment.edge_partition
        )
        _assert_shm_clean()

    def test_corruption_quarantined_by_validation(self, chaos_stream):
        baseline = _run_persistent(chaos_stream, "")
        chaotic = _run_persistent(chaos_stream, "corrupt,seed=3")
        assert np.array_equal(
            baseline.assignment.edge_partition, chaotic.assignment.edge_partition
        )
        _assert_shm_clean()

    def test_crash_mid_run_leaves_resident_pool_reusable(self, chaos_stream):
        reliability = ReliabilityConfig(
            inject_faults="crash,seed=1", backoff_base=0.0, backoff_max=0.0
        )
        cfg = ClugpConfig(num_partitions=4, reliability=reliability)
        with PersistentRuntime(3) as runtime:
            chaotic = distributed_clugp(
                chaos_stream, 4, num_nodes=3, config=cfg, seed=0,
                backend="persistent", runtime=runtime,
            )
            # the respawned pool must still serve a clean follow-up call
            clean = distributed_clugp(
                chaos_stream, 4, num_nodes=3, seed=0, backend="persistent",
                runtime=runtime,
            )
            assert np.array_equal(
                chaotic.assignment.edge_partition,
                clean.assignment.edge_partition,
            )
        _assert_shm_clean()


# --------------------------------------------------------------------- #
# incremental merge: any arrival order, same bits
# --------------------------------------------------------------------- #


NUM_PERM_NODES = 5


@pytest.fixture(scope="module")
def stage_summaries(ident_stream):
    """Serial stage-1 summaries for the arrival-permutation sweep."""
    ranges = _shard_ranges(ident_stream.num_edges, NUM_PERM_NODES)
    boundary = _boundary_mask(ident_stream, ranges)
    summaries = []
    for node, (start, stop) in enumerate(ranges):
        _, summary, _, _ = _cluster_stage_worker(
            (
                node,
                ident_stream.src[start:stop],
                ident_stream.dst[start:stop],
                ident_stream.num_vertices,
                boundary,
                8,
                ClugpConfig(num_partitions=8),
                0,
                1 << 16,
            )
        )
        summaries.append(summary)
    return summaries


class TestIncrementalMerger:
    """The pipelined fold's correctness contract (DESIGN.md §11)."""

    @settings(max_examples=24, deadline=None)
    @given(perm=st.permutations(list(range(NUM_PERM_NODES))))
    def test_any_arrival_permutation_bit_identical(
        self, stage_summaries, ident_stream, perm
    ):
        reference = _merge_summaries(stage_summaries, ident_stream.num_vertices)
        merger = IncrementalMerger()
        for node in perm:
            merger.add(node, stage_summaries[node])
        decision = merger.finalize(ident_stream.num_vertices)

        ref_graph, got_graph = reference.merged_graph, decision.merged_graph
        for field in (
            "internal", "indptr", "indices", "weights",
            "in_indptr", "in_indices", "in_weights",
        ):
            assert np.array_equal(
                getattr(ref_graph, field), getattr(got_graph, field)
            ), field
        assert np.array_equal(reference.offsets, decision.offsets)
        assert np.array_equal(
            reference.boundary_vertices, decision.boundary_vertices
        )
        assert np.array_equal(
            reference.boundary_global_cluster, decision.boundary_global_cluster
        )
        assert np.array_equal(reference.warm_start, decision.warm_start)
        assert reference.num_unresolved_edges == decision.num_unresolved_edges

    def test_finalize_requires_at_least_one_summary(self, ident_stream):
        with pytest.raises(ValueError, match="before any summary"):
            IncrementalMerger().finalize(ident_stream.num_vertices)

    def test_duplicate_node_rejected(self, stage_summaries):
        merger = IncrementalMerger()
        merger.add(0, stage_summaries[0])
        with pytest.raises(ValueError, match="already merged"):
            merger.add(0, stage_summaries[0])
