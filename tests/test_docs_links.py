"""Docs hygiene: every relative markdown link must resolve.

Runs the same checker CI uses (``scripts/check_links.py``) so a renamed
or deleted file fails tier-1 locally, not just in the workflow.
"""

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))

import check_links  # noqa: E402


class TestDocsLinks:
    def test_expected_docs_exist(self):
        for rel in ("README.md", "DESIGN.md", "docs/architecture.md",
                    "docs/service.md"):
            assert (REPO / rel).is_file(), f"missing doc: {rel}"

    def test_scanner_finds_the_docs(self):
        scanned = {p.relative_to(REPO).as_posix() for p in check_links.iter_doc_files()}
        assert {"README.md", "DESIGN.md", "docs/architecture.md",
                "docs/service.md"} <= scanned

    def test_no_dead_relative_links(self):
        errors = []
        for path in check_links.iter_doc_files():
            errors.extend(check_links.check_file(path))
        assert not errors, "\n".join(errors)

    def test_checker_flags_a_dead_link(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [here](no/such/file.md)\n")
        errors = check_links.check_file(bad)
        assert len(errors) == 1 and "dead link" in errors[0]
