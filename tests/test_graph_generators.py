"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    powerlaw_configuration_graph,
    powerlaw_degree_sequence,
    rmat_graph,
    star_graph,
    web_crawl_graph,
)
from repro.graph.properties import fit_powerlaw_alpha, gini_coefficient


class TestPowerlawDegreeSequence:
    def test_bounds(self):
        deg = powerlaw_degree_sequence(5000, alpha=2.1, min_degree=2, max_degree=100, seed=1)
        assert deg.min() >= 2 and deg.max() <= 100

    def test_deterministic(self):
        a = powerlaw_degree_sequence(100, seed=4)
        b = powerlaw_degree_sequence(100, seed=4)
        assert np.array_equal(a, b)

    def test_heavier_tail_with_smaller_alpha(self):
        light = powerlaw_degree_sequence(20_000, alpha=3.5, seed=2)
        heavy = powerlaw_degree_sequence(20_000, alpha=1.8, seed=2)
        assert heavy.mean() > light.mean()

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError, match="alpha"):
            powerlaw_degree_sequence(10, alpha=0.5)

    def test_alpha_recoverable_by_mle(self):
        deg = powerlaw_degree_sequence(
            50_000, alpha=2.5, min_degree=2, max_degree=100_000, seed=3
        )
        # the discrete floor biases the continuous Hill estimator downward;
        # the fit should still land in the right neighbourhood
        fitted = fit_powerlaw_alpha(deg, d_min=2)
        assert 2.0 < fitted < 3.0


class TestConfigurationModel:
    def test_shape(self):
        g = powerlaw_configuration_graph(1000, seed=1)
        assert g.num_vertices == 1000
        assert g.num_edges > 500

    def test_deterministic(self):
        a = powerlaw_configuration_graph(300, seed=9)
        b = powerlaw_configuration_graph(300, seed=9)
        assert a == b

    def test_degrees_are_skewed(self):
        g = powerlaw_configuration_graph(5000, alpha=2.0, seed=2)
        assert gini_coefficient(g.degrees()) > 0.2


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert_graph(500, edges_per_vertex=3, seed=1)
        assert g.num_edges == (500 - 3) * 3

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, edges_per_vertex=3)

    def test_hubs_emerge(self):
        g = barabasi_albert_graph(3000, edges_per_vertex=4, seed=5)
        deg = g.degrees()
        assert deg.max() > 20 * np.median(deg[deg > 0])

    def test_targets_precede_sources(self):
        g = barabasi_albert_graph(100, edges_per_vertex=2, seed=0)
        assert (g.dst < g.src).all()  # attachment targets are older vertices


class TestRmat:
    def test_shape(self):
        g = rmat_graph(scale=8, edge_factor=4, seed=1)
        assert g.num_vertices == 256
        assert g.num_edges == 1024

    def test_deterministic(self):
        assert rmat_graph(6, 4, seed=3) == rmat_graph(6, 4, seed=3)

    def test_skewed_quadrants(self):
        g = rmat_graph(scale=10, edge_factor=8, seed=2)
        # Graph500 parameters concentrate edges on low ids
        assert np.median(g.src) < g.num_vertices // 2

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(4, 4, a=0.5, b=0.3, c=0.3)


class TestErdosRenyi:
    def test_shape(self):
        g = erdos_renyi_graph(100, 500, seed=1)
        assert g.num_vertices == 100 and g.num_edges == 500

    def test_zero_edges(self):
        assert erdos_renyi_graph(10, 0).num_edges == 0

    def test_rejects_negative_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, -1)

    def test_nearly_uniform_degrees(self):
        g = erdos_renyi_graph(500, 20_000, seed=4)
        assert gini_coefficient(g.degrees()) < 0.2


class TestWebCrawl:
    def test_edges_reference_valid_pages(self):
        g = web_crawl_graph(300, avg_out_degree=6, seed=1)
        assert g.src.max() < 300 and g.dst.max() < 300

    def test_deterministic(self):
        assert web_crawl_graph(200, seed=7) == web_crawl_graph(200, seed=7)

    def test_host_locality(self):
        g = web_crawl_graph(
            1000, avg_out_degree=8, host_size=50, intra_host_prob=0.9, seed=2
        )
        same_host = (g.src // 50) == (g.dst // 50)
        assert same_host.mean() > 0.75  # ~90% requested, allow sampling slack

    def test_forward_links_exist(self):
        # crawl emits links to not-yet-crawled pages within the host block
        g = web_crawl_graph(500, host_size=25, intra_host_prob=0.9, seed=3)
        assert (g.dst > g.src).any()

    def test_low_locality_configuration(self):
        g = web_crawl_graph(
            800, avg_out_degree=8, host_size=40, intra_host_prob=0.1, seed=4
        )
        same_host = (g.src // 40) == (g.dst // 40)
        assert same_host.mean() < 0.5

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            web_crawl_graph(100, avg_out_degree=-1)
        with pytest.raises(ValueError):
            web_crawl_graph(100, intra_host_prob=1.5)


class TestPlantedPartition:
    def test_shape(self):
        g = planted_partition_graph(4, 25, seed=1)
        assert g.num_vertices == 100

    def test_communities_denser_than_background(self):
        g = planted_partition_graph(6, 50, p_in=0.2, p_out=0.005, seed=2)
        same = (g.src // 50) == (g.dst // 50)
        assert same.mean() > 0.7

    def test_zero_probabilities(self):
        g = planted_partition_graph(3, 10, p_in=0.0, p_out=0.0, seed=1)
        assert g.num_edges == 0
        assert g.num_vertices == 30

    def test_deterministic(self):
        assert planted_partition_graph(3, 20, seed=5) == planted_partition_graph(
            3, 20, seed=5
        )


class TestStar:
    def test_structure(self):
        g = star_graph(10)
        assert g.num_vertices == 11
        assert g.num_edges == 10
        assert (g.src == 0).all()
        assert sorted(g.dst.tolist()) == list(range(1, 11))

    def test_hub_degree(self):
        g = star_graph(32)
        assert g.degrees()[0] == 32
