"""Tests for graph I/O round trips."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph import io


@pytest.fixture
def graph():
    return DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 3)])


class TestEdgeList:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.edges"
        io.write_edgelist(graph, path)
        loaded = io.read_edgelist(path)
        assert loaded == graph

    def test_header_preserves_isolated_vertices(self, tmp_path):
        g = DiGraph([0], [1], num_vertices=9)
        path = tmp_path / "g.edges"
        io.write_edgelist(g, path)
        assert io.read_edgelist(path).num_vertices == 9

    def test_comment_written(self, graph, tmp_path):
        path = tmp_path / "g.edges"
        io.write_edgelist(graph, path, comment="hello\nworld")
        text = path.read_text()
        assert "# hello" in text and "# world" in text

    def test_explicit_num_vertices_overrides(self, graph, tmp_path):
        path = tmp_path / "g.edges"
        io.write_edgelist(graph, path)
        assert io.read_edgelist(path, num_vertices=50).num_vertices == 50

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1\n2\n")
        with pytest.raises(ValueError, match="malformed"):
            io.read_edgelist(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n\n1 2\n")
        assert io.read_edgelist(path).num_edges == 2


class TestNpz:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        io.write_npz(graph, path)
        assert io.read_npz(path) == graph

    def test_preserves_isolated_vertices(self, tmp_path):
        g = DiGraph([2], [3], num_vertices=77)
        path = tmp_path / "g.npz"
        io.write_npz(g, path)
        assert io.read_npz(path).num_vertices == 77


class TestMetis:
    def test_roundtrip_undirected_structure(self, graph, tmp_path):
        path = tmp_path / "g.metis"
        io.write_metis(graph, path)
        loaded = io.read_metis(path)
        # loaded has both directions of each undirected edge
        undirected = {frozenset(e) for e in graph.simplify().edges().tolist()}
        loaded_undirected = {frozenset(e) for e in loaded.edges().tolist()}
        assert undirected == loaded_undirected

    def test_header_counts(self, graph, tmp_path):
        path = tmp_path / "g.metis"
        io.write_metis(graph, path)
        n, m = map(int, path.read_text().splitlines()[0].split())
        assert n == graph.num_vertices
        assert m == 4  # 4 undirected edges

    def test_self_loops_dropped(self, tmp_path):
        g = DiGraph.from_edges([(0, 0), (0, 1)])
        path = tmp_path / "g.metis"
        io.write_metis(g, path)
        loaded = io.read_metis(path)
        assert loaded.num_edges == 2  # (0,1) both ways

    def test_reciprocal_edges_collapse(self, tmp_path):
        g = DiGraph.from_edges([(0, 1), (1, 0)])
        path = tmp_path / "g.metis"
        io.write_metis(g, path)
        n, m = map(int, path.read_text().splitlines()[0].split())
        assert m == 1

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.metis"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            io.read_metis(path)

    def test_wrong_line_count_raises(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 1\n2\n")
        with pytest.raises(ValueError, match="adjacency lines"):
            io.read_metis(path)


def test_large_roundtrip_via_npz(tmp_path):
    rng = np.random.default_rng(0)
    g = DiGraph(rng.integers(0, 1000, 5000), rng.integers(0, 1000, 5000))
    path = tmp_path / "big.npz"
    io.write_npz(g, path)
    assert io.read_npz(path) == g
