"""Tests for the batched parallel cluster-partitioning game (Section V-D)."""

import numpy as np
import pytest

import repro.core.parallel as parallel_mod
from repro.config import GameConfig
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.core.clustering import streaming_clustering
from repro.core.cluster_graph import ClusterGraph, build_cluster_graph
from repro.core.game import ClusterPartitioningGame
from repro.core.parallel import (
    _batch_best_response,
    _batch_best_response_reference,
    parallel_game,
)


@pytest.fixture(scope="module")
def cluster_graph():
    g = web_crawl_graph(800, avg_out_degree=8, host_size=25, seed=8)
    s = EdgeStream.from_graph(g)
    clustering = streaming_clustering(s, max_volume=s.num_edges // 32)
    return build_cluster_graph(s, clustering)


class TestParallelGame:
    def test_produces_valid_assignment(self, cluster_graph):
        cfg = GameConfig(seed=0, batch_size=16, num_threads=4)
        result = parallel_game(cluster_graph, 8, cfg)
        assert result.assignment.shape == (cluster_graph.num_clusters,)
        assert result.assignment.min() >= 0 and result.assignment.max() < 8

    def test_potential_decreases(self, cluster_graph):
        cfg = GameConfig(seed=0, batch_size=16, num_threads=4)
        result = parallel_game(cluster_graph, 8, cfg)
        assert result.potential_trace[-1] <= result.potential_trace[0] + 1e-9

    def test_converges(self, cluster_graph):
        cfg = GameConfig(seed=0, batch_size=16, num_threads=4, max_rounds=100)
        result = parallel_game(cluster_graph, 8, cfg)
        assert result.converged

    def test_quality_close_to_sequential(self, cluster_graph):
        cfg = GameConfig(seed=0, batch_size=16, num_threads=4)
        par = parallel_game(cluster_graph, 8, cfg)
        seq_game = ClusterPartitioningGame(cluster_graph, 8, GameConfig(seed=0))
        seq_game.run()
        par_cost = ClusterPartitioningGame(cluster_graph, 8, GameConfig(seed=0))
        par_cost.assignment = par.assignment.copy()
        par_cost.loads = np.bincount(
            par.assignment,
            weights=cluster_graph.internal.astype(float),
            minlength=8,
        )
        # the batched equilibrium is within 25% of the sequential one
        assert par_cost.global_cost() <= 1.25 * seq_game.global_cost() + 1e-9

    def test_single_batch_single_thread_matches_sequentialish(self, cluster_graph):
        cfg = GameConfig(seed=3, batch_size=10**6, num_threads=1)
        result = parallel_game(cluster_graph, 4, cfg)
        assert result.converged

    def test_thread_count_does_not_change_validity(self, cluster_graph):
        for threads in (1, 2, 8):
            cfg = GameConfig(seed=1, batch_size=32, num_threads=threads)
            result = parallel_game(cluster_graph, 8, cfg)
            assert result.assignment.max() < 8

    def test_empty_cluster_graph(self):
        empty = ClusterGraph.from_dicts(0, np.empty(0, dtype=np.int64), [], [])
        result = parallel_game(empty, 4, GameConfig(seed=0))
        assert result.assignment.size == 0
        assert result.rounds == 0


class TestBatchedBestResponseIdentity:
    """The batched evaluator must propose exactly the moves the retained
    sequential reference loop proposes — same clusters, same targets, same
    order — so parallel_game produces identical rounds/moves/assignments."""

    def _run_reference(self, cluster_graph, k, config):
        parallel_mod._batch_best_response = _batch_best_response_reference
        try:
            return parallel_game(cluster_graph, k, config)
        finally:
            parallel_mod._batch_best_response = _batch_best_response

    @pytest.mark.parametrize("batch_size", [1, 16, 64, 10**6])
    @pytest.mark.parametrize("k", [2, 8])
    def test_identical_games(self, cluster_graph, batch_size, k):
        config = GameConfig(seed=0, batch_size=batch_size, num_threads=2)
        batched = parallel_game(cluster_graph, k, config)
        reference = self._run_reference(cluster_graph, k, config)
        assert np.array_equal(batched.assignment, reference.assignment)
        assert batched.moves == reference.moves
        assert batched.rounds == reference.rounds
        assert batched.potential_trace == reference.potential_trace

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_identical_across_seeds(self, cluster_graph, seed):
        config = GameConfig(seed=seed, batch_size=32, num_threads=4)
        batched = parallel_game(cluster_graph, 8, config)
        reference = self._run_reference(cluster_graph, 8, config)
        assert np.array_equal(batched.assignment, reference.assignment)
        assert batched.moves == reference.moves

    def test_single_batch_proposals_identical(self, cluster_graph):
        """Direct comparison of one proposal pass over the whole graph."""
        game = ClusterPartitioningGame(cluster_graph, 8, GameConfig(seed=4))
        batch = range(0, cluster_graph.num_clusters)
        moves_batched = _batch_best_response(
            game, batch, game.assignment.copy(), game.loads.copy()
        )
        moves_reference = _batch_best_response_reference(
            game, batch, game.assignment.copy(), game.loads.copy()
        )
        assert moves_batched == moves_reference

    def test_batch_cost_matrix_matches_cost_vector(self, cluster_graph):
        game = ClusterPartitioningGame(cluster_graph, 8, GameConfig(seed=0))
        costs = game.batch_cost_matrix(
            0, cluster_graph.num_clusters, game.assignment, game.loads
        )
        for c in range(0, cluster_graph.num_clusters, 7):
            assert np.array_equal(costs[c], game.cost_vector(c))


class TestInitialAssignment:
    def test_parallel_game_accepts_warm_start(self, cluster_graph):
        seq = parallel_game(cluster_graph, 4, GameConfig(seed=5))
        refined = parallel_game(
            cluster_graph, 4, GameConfig(seed=5), initial_assignment=seq.assignment
        )
        # a batch-consistent equilibrium stays put under refinement
        assert refined.moves == 0
        assert np.array_equal(refined.assignment, seq.assignment)
