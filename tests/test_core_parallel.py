"""Tests for the batched parallel cluster-partitioning game (Section V-D)."""

import numpy as np
import pytest

from repro.config import GameConfig
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.core.clustering import streaming_clustering
from repro.core.cluster_graph import ClusterGraph, build_cluster_graph
from repro.core.game import ClusterPartitioningGame
from repro.core.parallel import parallel_game


@pytest.fixture(scope="module")
def cluster_graph():
    g = web_crawl_graph(800, avg_out_degree=8, host_size=25, seed=8)
    s = EdgeStream.from_graph(g)
    clustering = streaming_clustering(s, max_volume=s.num_edges // 32)
    return build_cluster_graph(s, clustering)


class TestParallelGame:
    def test_produces_valid_assignment(self, cluster_graph):
        cfg = GameConfig(seed=0, batch_size=16, num_threads=4)
        result = parallel_game(cluster_graph, 8, cfg)
        assert result.assignment.shape == (cluster_graph.num_clusters,)
        assert result.assignment.min() >= 0 and result.assignment.max() < 8

    def test_potential_decreases(self, cluster_graph):
        cfg = GameConfig(seed=0, batch_size=16, num_threads=4)
        result = parallel_game(cluster_graph, 8, cfg)
        assert result.potential_trace[-1] <= result.potential_trace[0] + 1e-9

    def test_converges(self, cluster_graph):
        cfg = GameConfig(seed=0, batch_size=16, num_threads=4, max_rounds=100)
        result = parallel_game(cluster_graph, 8, cfg)
        assert result.converged

    def test_quality_close_to_sequential(self, cluster_graph):
        cfg = GameConfig(seed=0, batch_size=16, num_threads=4)
        par = parallel_game(cluster_graph, 8, cfg)
        seq_game = ClusterPartitioningGame(cluster_graph, 8, GameConfig(seed=0))
        seq_game.run()
        par_cost = ClusterPartitioningGame(cluster_graph, 8, GameConfig(seed=0))
        par_cost.assignment = par.assignment.copy()
        par_cost.loads = np.bincount(
            par.assignment,
            weights=cluster_graph.internal.astype(float),
            minlength=8,
        )
        # the batched equilibrium is within 25% of the sequential one
        assert par_cost.global_cost() <= 1.25 * seq_game.global_cost() + 1e-9

    def test_single_batch_single_thread_matches_sequentialish(self, cluster_graph):
        cfg = GameConfig(seed=3, batch_size=10**6, num_threads=1)
        result = parallel_game(cluster_graph, 4, cfg)
        assert result.converged

    def test_thread_count_does_not_change_validity(self, cluster_graph):
        for threads in (1, 2, 8):
            cfg = GameConfig(seed=1, batch_size=32, num_threads=threads)
            result = parallel_game(cluster_graph, 8, cfg)
            assert result.assignment.max() < 8

    def test_empty_cluster_graph(self):
        empty = ClusterGraph.from_dicts(0, np.empty(0, dtype=np.int64), [], [])
        result = parallel_game(empty, 4, GameConfig(seed=0))
        assert result.assignment.size == 0
        assert result.rounds == 0
