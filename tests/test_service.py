"""Tests for the incremental PartitionService (DESIGN.md §7).

The §7 invariants, each pinned here:

* I1 (anchor): a single-batch service is bit-identical to
  ``ClugpPartitioner.partition``;
* I2 (warm pass 1): the clustering snapshot after any batch split is
  bit-identical to the batch pipeline's pass 1 on the concatenated
  prefix (raw-id stability included);
* I3 (frontier safety): the restricted game never leaves the potential
  higher than the warm start, and the service's ideal map comes from an
  equilibrium of the restricted game;
* I4 (migration cap): no batch applies more moves than the cap, and the
  moves chosen are the highest-degree candidates;
* I5 (hard balance): the served loads respect ``ceil(tau * |E| / k)``
  after every batch;
* I6 (bounded churn + drift): churned edges are a subset of the
  reassigned edges, and multi-batch RF stays within a loose documented
  bound of the from-scratch oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClugpConfig, GameConfig
from repro.core.clustering import ClusteringState, streaming_clustering
from repro.core.partitioner import ClugpPartitioner
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.service import BatchStats, MigrationPlan, PartitionService, plan_migrations


def crawl_stream(pages=600, seed=3, order="bfs"):
    graph = web_crawl_graph(pages, avg_out_degree=6, host_size=20, seed=seed)
    return EdgeStream.from_graph(graph, order=order, seed=seed)


def feed(service, stream, batch_size):
    for src, dst in stream.batches(batch_size):
        service.ingest_pair(src, dst)
    return service


# --------------------------------------------------------------------- #
# I1: single-batch bit-identity
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("k", [2, 8])
def test_single_batch_identical_to_batch_pipeline(k):
    stream = crawl_stream()
    cfg = ClugpConfig(num_partitions=k, game=GameConfig(seed=1))
    reference = ClugpPartitioner(k, seed=1, config=cfg).partition(stream)
    service = PartitionService(stream.num_vertices, cfg)
    stats = service.ingest_pair(stream.src, stream.dst)
    assert np.array_equal(service.edge_partition, reference.edge_partition)
    assert stats.candidate_moves == 0  # first batch never migrates
    assert stats.frontier_clusters == stats.clusters


def test_single_batch_quality_stats_match_assignment():
    stream = crawl_stream(300)
    service = PartitionService(stream.num_vertices, ClugpConfig(num_partitions=4))
    stats = service.ingest_pair(stream.src, stream.dst)
    a = service.assignment()
    assert stats.replication_factor == pytest.approx(a.replication_factor())
    assert stats.relative_balance == pytest.approx(a.relative_balance())


# --------------------------------------------------------------------- #
# I2: warm pass-1 state equivalence
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("chunk", [1, 7, 1024])
def test_snapshot_equals_prefix_reference(chunk):
    stream = crawl_stream(200)
    vmax = max(1, stream.num_edges // 4)
    state = ClusteringState(stream.num_vertices, vmax)
    consumed = 0
    for src, dst in stream.batches(chunk):
        state.ingest_pair(src, dst)
        consumed += src.size
        if consumed in (chunk, 5 * chunk, stream.num_edges):
            prefix = EdgeStream(
                stream.src[:consumed], stream.dst[:consumed], stream.num_vertices
            )
            ref = streaming_clustering(prefix, vmax)
            snap = state.snapshot()
            assert np.array_equal(snap.cluster_of, ref.cluster_of)
            assert np.array_equal(snap.volume, ref.volume)
            assert np.array_equal(snap.degree, ref.degree)
            assert snap.mirror_clusters == ref.mirror_clusters
            assert snap.num_clusters == ref.num_clusters
    final = state.finalize()
    ref = streaming_clustering(stream, vmax)
    assert np.array_equal(final.cluster_of, ref.cluster_of)


def test_snapshot_raw_ids_stable_across_batches():
    stream = crawl_stream(200)
    vmax = max(1, stream.num_edges // 4)
    state = ClusteringState(stream.num_vertices, vmax)
    half = stream.num_edges // 2
    state.ingest_pair(stream.src[:half], stream.dst[:half])
    snap1 = state.snapshot()
    state.ingest_pair(stream.src[half:], stream.dst[half:])
    snap2 = state.snapshot()
    # every vertex still clustered keeps the raw id of its cluster unless
    # it moved: specifically, a compact cluster of snap1 that survives in
    # snap2 appears under the same raw id
    raw1 = set(snap1.raw_ids.tolist())
    raw2 = set(snap2.raw_ids.tolist())
    survivors = raw1 & raw2
    assert survivors, "no cluster survived — fixture too small"
    # raw->compact maps are consistent: same raw id on both sides refers
    # to a cluster (possibly with changed membership), never renumbered
    assert max(raw1) < state.num_raw
    assert max(raw2) < state.num_raw


def test_snapshot_does_not_end_ingestion():
    stream = crawl_stream(150)
    vmax = max(1, stream.num_edges // 4)
    with_snap = ClusteringState(stream.num_vertices, vmax)
    without = ClusteringState(stream.num_vertices, vmax)
    half = stream.num_edges // 2
    for st_ in (with_snap, without):
        st_.ingest_pair(stream.src[:half], stream.dst[:half])
    with_snap.snapshot()  # must not perturb further ingestion
    for st_ in (with_snap, without):
        st_.ingest_pair(stream.src[half:], stream.dst[half:])
    a, b = with_snap.finalize(), without.finalize()
    assert np.array_equal(a.cluster_of, b.cluster_of)
    assert np.array_equal(a.volume, b.volume)


def test_snapshot_after_finalize_raises():
    state = ClusteringState(4, 2)
    state.ingest_pair(np.array([0, 1]), np.array([1, 2]))
    state.finalize()
    with pytest.raises(RuntimeError):
        state.snapshot()


# --------------------------------------------------------------------- #
# I3 is covered by test_core_game.py (frontier-restricted run);
# service-level: the served map always comes from a valid assignment
# --------------------------------------------------------------------- #


def test_served_map_consistent_with_edge_partition():
    stream = crawl_stream(400)
    k = 4
    service = feed(
        PartitionService(
            stream.num_vertices,
            ClugpConfig(num_partitions=k),
            expected_edges=stream.num_edges,
        ),
        stream,
        max(1, stream.num_edges // 9),
    )
    vp = service.vertex_partition
    seen = vp >= 0
    # every streamed endpoint is served from a real partition
    assert seen[stream.src].all() and seen[stream.dst].all()
    assert vp[seen].max() < k
    ep = service.edge_partition
    assert ep.shape == (stream.num_edges,)
    assert ep.min() >= 0 and ep.max() < k
    assert np.array_equal(
        np.bincount(ep, minlength=k), service.loads
    )


# --------------------------------------------------------------------- #
# I4: migration cap
# --------------------------------------------------------------------- #


def test_plan_migrations_cap_and_ordering():
    served = np.array([0, 0, 0, 1, -1, 2])
    ideal = np.array([1, 0, 1, 0, 2, -1])
    degree = np.array([5, 9, 7, 5, 1, 3])
    plan = plan_migrations(served, ideal, degree, cap=2)
    # candidates: vertices 0 (deg 5), 2 (deg 7), 3 (deg 5); cap keeps the
    # two highest-degree, ties by ascending id -> {2, 0}, reported sorted
    assert plan.candidates == 3
    assert plan.applied == 2
    assert plan.deferred == 1
    assert plan.vertices.tolist() == [0, 2]
    assert plan.sources.tolist() == [0, 0]
    assert plan.targets.tolist() == [1, 1]
    uncapped = plan_migrations(served, ideal, degree, cap=None)
    assert uncapped.vertices.tolist() == [0, 2, 3]
    assert plan_migrations(served, ideal, degree, cap=0).applied == 0
    with pytest.raises(ValueError):
        plan_migrations(served, ideal, degree, cap=-1)


@pytest.mark.parametrize("cap", [0, 3, 50])
def test_service_respects_migration_cap(cap):
    stream = crawl_stream(400)
    service = feed(
        PartitionService(
            stream.num_vertices,
            ClugpConfig(num_partitions=4),
            migration_cap=cap,
            expected_edges=stream.num_edges,
        ),
        stream,
        max(1, stream.num_edges // 7),
    )
    assert all(s.applied_moves <= cap for s in service.history)
    assert all(
        s.deferred_moves == s.candidate_moves - s.applied_moves
        for s in service.history
    )
    if cap == 0:
        # with no moves allowed, nothing is ever reassigned or churned
        assert all(s.reassigned_edges == 0 for s in service.history)
        assert all(s.churn_edges == 0 for s in service.history)


# --------------------------------------------------------------------- #
# I5: hard balance cap
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("batches", [3, 11])
def test_service_holds_hard_balance_cap(batches):
    stream = crawl_stream(500)
    k = 4
    cfg = ClugpConfig(num_partitions=k)
    service = PartitionService(
        stream.num_vertices, cfg, expected_edges=stream.num_edges
    )
    total = 0
    for src, dst in stream.batches(max(1, stream.num_edges // batches)):
        service.ingest_pair(src, dst)
        total += src.size
        cap = int(np.ceil(cfg.imbalance_factor * total / k))
        assert int(service.loads.max()) <= cap


# --------------------------------------------------------------------- #
# I6: churn bounded by reassignment; drift bounded vs the oracle
# --------------------------------------------------------------------- #


def test_churn_subset_of_reassigned():
    stream = crawl_stream(400)
    service = feed(
        PartitionService(
            stream.num_vertices,
            ClugpConfig(num_partitions=4),
            expected_edges=stream.num_edges,
        ),
        stream,
        max(1, stream.num_edges // 9),
    )
    assert all(s.churn_edges <= s.reassigned_edges for s in service.history)


@settings(max_examples=8, deadline=None)
@given(
    batch_size=st.sampled_from([1, 7, 1024]),
    seed=st.integers(min_value=0, max_value=3),
)
def test_multi_batch_drift_and_caps_property(batch_size, seed):
    """Random batch splits: migration counts respect the cap, balance
    holds, and RF drift vs the from-scratch oracle stays under the loose
    documented bound (DESIGN.md §7; random-graph fixture, hence looser
    than the bench ceiling)."""
    stream = crawl_stream(150, seed=seed)
    k = 4
    cap = 16
    cfg = ClugpConfig(num_partitions=k, game=GameConfig(seed=seed))
    service = feed(
        PartitionService(
            stream.num_vertices,
            cfg,
            migration_cap=cap,
            expected_edges=stream.num_edges,
        ),
        stream,
        batch_size,
    )
    assert all(s.applied_moves <= cap for s in service.history)
    hard_cap = int(np.ceil(cfg.imbalance_factor * stream.num_edges / k))
    assert int(service.loads.max()) <= hard_cap
    rf = service.assignment().replication_factor()
    rf_oracle = service.oracle_assignment().replication_factor()
    assert rf <= rf_oracle * 1.75 + 0.25


def test_empty_batches_are_noops():
    stream = crawl_stream(150)
    service = PartitionService(
        stream.num_vertices, ClugpConfig(num_partitions=4),
        expected_edges=stream.num_edges,
    )
    empty = np.empty(0, dtype=np.int64)
    s0 = service.ingest_pair(empty, empty)
    assert isinstance(s0, BatchStats) and s0.num_edges == 0
    service.ingest_pair(stream.src, stream.dst)
    before = service.edge_partition
    s2 = service.ingest_pair(empty, empty)
    assert s2.num_edges == 0 and s2.applied_moves == 0
    assert np.array_equal(service.edge_partition, before)


def test_service_input_validation():
    service = PartitionService(10, ClugpConfig(num_partitions=2))
    with pytest.raises(ValueError):
        service.ingest(np.zeros((3, 3), dtype=np.int64))
    with pytest.raises(ValueError):
        service.ingest_pair(np.array([0, 11]), np.array([1, 2]))
    with pytest.raises(ValueError):
        PartitionService(10, migration_cap=-2)
    with pytest.raises(ValueError):
        PartitionService(10, quality_every=0)
    with pytest.raises(RuntimeError):
        service.oracle_assignment()  # nothing ingested yet


def test_ingest_matrix_matches_ingest_pair():
    stream = crawl_stream(150)
    cfg = ClugpConfig(num_partitions=4)
    a = PartitionService(stream.num_vertices, cfg)
    b = PartitionService(stream.num_vertices, cfg)
    a.ingest(np.column_stack([stream.src, stream.dst]))
    b.ingest_pair(stream.src, stream.dst)
    assert np.array_equal(a.edge_partition, b.edge_partition)


def test_summary_and_plan_exposure():
    stream = crawl_stream(300)
    service = feed(
        PartitionService(
            stream.num_vertices,
            ClugpConfig(num_partitions=4),
            migration_cap=8,
            expected_edges=stream.num_edges,
        ),
        stream,
        max(1, stream.num_edges // 5),
    )
    summary = service.summary()
    assert summary["num_edges"] == stream.num_edges
    assert summary["batches"] == len(service.history)
    assert summary["applied_moves"] == sum(s.applied_moves for s in service.history)
    assert isinstance(service.last_plan, MigrationPlan)
    row = service.history[-1].to_dict()
    assert row["batch"] == len(service.history) - 1
    assert "edges_per_second" in row and "rf_drift" in row


# --------------------------------------------------------------------- #
# distributed refresh on the resident worker pool (PR 10)
# --------------------------------------------------------------------- #


def test_distributed_refresh_matches_process_oracle():
    from repro.core.distributed import distributed_clugp
    from repro.distributed import leaked_segments

    stream = crawl_stream(300)
    cfg = ClugpConfig(num_partitions=4, game=GameConfig(seed=1))
    service = feed(
        PartitionService(stream.num_vertices, cfg),
        stream,
        max(1, stream.num_edges // 4),
    )
    result = service.distributed_refresh(num_nodes=3)
    reference = distributed_clugp(
        service.stream(), 4, num_nodes=3, config=service._locked_config(),
        seed=1, merge_mode="merged", backend="process",
    )
    assert np.array_equal(
        result.assignment.edge_partition, reference.assignment.edge_partition
    )
    # the pool is resident: a second refresh reuses the same processes
    runtime = service._runtime
    pids = [h.process.pid for h in runtime.workers]
    again = service.distributed_refresh()
    assert service._runtime is runtime
    assert [h.process.pid for h in runtime.workers] == pids
    assert np.array_equal(
        result.assignment.edge_partition, again.assignment.edge_partition
    )
    service.close()
    assert leaked_segments() == []


def test_distributed_refresh_attached_runtime_not_closed():
    from repro.distributed import PersistentRuntime, leaked_segments

    stream = crawl_stream(200)
    service = feed(
        PartitionService(stream.num_vertices, ClugpConfig(num_partitions=4)),
        stream,
        max(1, stream.num_edges // 3),
    )
    with PersistentRuntime(2) as runtime:
        service.attach_runtime(runtime)
        service.distributed_refresh(num_nodes=2)
        assert service._runtime is runtime
        service.close()  # must NOT close a pool it does not own
        assert runtime.call(0, {"op": "ping"}) == "pong"
    assert leaked_segments() == []
