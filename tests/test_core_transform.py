"""Tests for pass 3 — partition transformation (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.core.clustering import streaming_clustering
from repro.core.cluster_graph import build_cluster_graph
from repro.core.game import ClusterPartitioningGame
from repro.core.transform import transform_partitions


def pipeline_inputs(edges_or_graph, k, vmax=None):
    if isinstance(edges_or_graph, list):
        g = DiGraph.from_edges(edges_or_graph)
    else:
        g = edges_or_graph
    s = EdgeStream.from_graph(g)
    vmax = vmax or max(1, s.num_edges // k)
    clustering = streaming_clustering(s, vmax)
    cg = build_cluster_graph(s, clustering)
    game = ClusterPartitioningGame(cg, k)
    assignment = game.run().assignment
    return s, clustering, assignment


class TestRules:
    def test_agreement_edges_follow_partition(self):
        s, clustering, cluster_partition = pipeline_inputs(
            [(0, 1), (1, 2), (2, 0)], k=2, vmax=100
        )
        edge_partition, stats = transform_partitions(
            s, clustering, cluster_partition, 2, imbalance_factor=2.0
        )
        # triangle merges into one cluster -> all edges agree
        assert stats.agreement == 3
        assert np.unique(edge_partition).size == 1

    def test_degree_rule_cuts_high_degree_endpoint(self):
        # hub 0 in cluster A, leaves in cluster B; the edge between them
        # should land in the leaf's partition (cut the hub)
        g = DiGraph.from_edges(
            [(0, 1), (0, 2), (0, 3), (4, 5), (5, 6), (6, 4), (0, 4)]
        )
        s = EdgeStream.from_graph(g)
        clustering = streaming_clustering(s, max_volume=3, enable_splitting=False)
        cu, c4 = clustering.cluster_of[0], clustering.cluster_of[4]
        if cu != c4:  # only meaningful when they ended up separated
            m = clustering.num_clusters
            cluster_partition = np.arange(m) % 2
            if cluster_partition[cu] != cluster_partition[c4]:
                edge_partition, stats = transform_partitions(
                    s, clustering, cluster_partition, 2, imbalance_factor=4.0
                )
                # last edge is (0, 4): deg(0) > deg(4) -> goes to 4's side
                assert edge_partition[-1] == cluster_partition[c4]

    def test_load_cap_strictly_enforced(self):
        graph = web_crawl_graph(600, avg_out_degree=10, seed=1)
        for tau in (1.0, 1.02, 1.1):
            s, clustering, cluster_partition = pipeline_inputs(graph, k=8)
            edge_partition, stats = transform_partitions(
                s, clustering, cluster_partition, 8, imbalance_factor=tau
            )
            loads = np.bincount(edge_partition, minlength=8)
            assert loads.max() <= stats.load_cap
            assert loads.sum() == s.num_edges

    def test_tau_one_gives_perfect_balance(self):
        graph = web_crawl_graph(600, avg_out_degree=10, seed=2)
        s, clustering, cluster_partition = pipeline_inputs(graph, k=4)
        edge_partition, _ = transform_partitions(
            s, clustering, cluster_partition, 4, imbalance_factor=1.0
        )
        loads = np.bincount(edge_partition, minlength=4)
        assert loads.max() - loads.min() <= int(np.ceil(s.num_edges / 4))

    def test_stats_cover_all_edges(self):
        graph = web_crawl_graph(500, avg_out_degree=8, seed=3)
        s, clustering, cluster_partition = pipeline_inputs(graph, k=4)
        _, stats = transform_partitions(
            s, clustering, cluster_partition, 4, imbalance_factor=1.05
        )
        assert stats.total() == s.num_edges

    def test_mirror_rule_used_when_divided(self):
        graph = web_crawl_graph(800, avg_out_degree=10, host_size=20, seed=4)
        s = EdgeStream.from_graph(graph)
        clustering = streaming_clustering(s, max_volume=s.num_edges // 32)
        if clustering.splits == 0:
            pytest.skip("no splits triggered on this instance")
        cg = build_cluster_graph(s, clustering)
        cluster_partition = ClusterPartitioningGame(cg, 8).run().assignment
        _, stats = transform_partitions(
            s, clustering, cluster_partition, 8, imbalance_factor=1.2
        )
        assert stats.mirror_reuse > 0


class TestValidation:
    def test_rejects_bad_tau(self):
        s, clustering, cluster_partition = pipeline_inputs([(0, 1)], k=2, vmax=10)
        with pytest.raises(ValueError, match="imbalance_factor"):
            transform_partitions(s, clustering, cluster_partition, 2, 0.5)

    def test_rejects_wrong_mapping_size(self):
        s, clustering, _ = pipeline_inputs([(0, 1), (1, 2)], k=2, vmax=10)
        with pytest.raises(ValueError, match="clusters"):
            transform_partitions(s, clustering, np.array([0, 1, 0, 1, 0]), 2, 1.0)

    def test_rejects_out_of_range_partition_ids(self):
        s, clustering, cluster_partition = pipeline_inputs([(0, 1)], k=2, vmax=10)
        bad = np.full_like(cluster_partition, 9)
        with pytest.raises(ValueError, match="out of range"):
            transform_partitions(s, clustering, bad, 2, 1.0)


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=2, max_size=100
    ),
    k=st.integers(1, 6),
    tau=st.floats(1.0, 1.5),
)
def test_property_transform_invariants(edges, k, tau):
    s = EdgeStream.from_graph(DiGraph.from_edges(edges))
    clustering = streaming_clustering(s, max_volume=max(1, s.num_edges // k))
    cg = build_cluster_graph(s, clustering)
    cluster_partition = ClusterPartitioningGame(cg, k).run().assignment
    edge_partition, stats = transform_partitions(
        s, clustering, cluster_partition, k, imbalance_factor=tau
    )
    # every edge assigned exactly once to a valid partition
    assert edge_partition.shape == (s.num_edges,)
    assert edge_partition.min() >= 0 and edge_partition.max() < k
    # the tau cap holds strictly
    loads = np.bincount(edge_partition, minlength=k)
    assert loads.max() <= stats.load_cap
    # rule counters account for every edge
    assert stats.total() == s.num_edges


class TestExternalMapping:
    """TransformState with an externally supplied vertex->partition map
    (the distributed merged mode's broadcast decision)."""

    def test_matches_internal_join(self):
        g = web_crawl_graph(400, avg_out_degree=6, host_size=20, seed=2)
        s, clustering, cluster_partition = pipeline_inputs(g, k=4)
        from repro.core.transform import TransformState

        joined = TransformState(
            clustering, cluster_partition, 4,
            num_edges=s.num_edges, num_vertices=s.num_vertices,
            imbalance_factor=1.05,
        )
        vp = np.full(s.num_vertices, -1, dtype=np.int64)
        seen = clustering.active_mask()
        vp[seen] = cluster_partition[clustering.cluster_of[seen]]
        external = TransformState(
            clustering, None, 4,
            num_edges=s.num_edges, num_vertices=s.num_vertices,
            imbalance_factor=1.05, vertex_partition=vp,
        )
        a = joined.ingest_pair(s.src, s.dst)
        b = external.ingest_pair(s.src, s.dst)
        assert np.array_equal(a, b)

    def test_requires_exactly_one_mapping(self):
        s, clustering, cluster_partition = pipeline_inputs([(0, 1), (1, 2)], k=2)
        from repro.core.transform import TransformState

        vp = np.zeros(s.num_vertices, dtype=np.int64)
        with pytest.raises(ValueError, match="exactly one"):
            TransformState(
                clustering, cluster_partition, 2,
                num_edges=s.num_edges, num_vertices=s.num_vertices,
                vertex_partition=vp,
            )
        with pytest.raises(ValueError, match="exactly one"):
            TransformState(
                clustering, None, 2,
                num_edges=s.num_edges, num_vertices=s.num_vertices,
            )

    def test_validates_external_mapping(self):
        s, clustering, _ = pipeline_inputs([(0, 1), (1, 2)], k=2)
        from repro.core.transform import TransformState

        with pytest.raises(ValueError, match="vertex_partition must map"):
            TransformState(
                clustering, None, 2, num_edges=s.num_edges,
                num_vertices=s.num_vertices,
                vertex_partition=np.zeros(1, dtype=np.int64),
            )
        with pytest.raises(ValueError, match="out of range"):
            TransformState(
                clustering, None, 2, num_edges=s.num_edges,
                num_vertices=s.num_vertices,
                vertex_partition=np.full(s.num_vertices, 5, dtype=np.int64),
            )


class TestPerPartitionCaps:
    """load_caps: the distributed balance quota exchange's enforcement."""

    def test_uniform_caps_match_default(self):
        g = web_crawl_graph(400, avg_out_degree=6, host_size=20, seed=3)
        s, clustering, cluster_partition = pipeline_inputs(g, k=4)
        from repro.core.transform import TransformState

        import math
        cap = max(1, math.ceil(1.05 * s.num_edges / 4))
        default = TransformState(
            clustering, cluster_partition, 4,
            num_edges=s.num_edges, num_vertices=s.num_vertices,
            imbalance_factor=1.05,
        )
        explicit = TransformState(
            clustering, cluster_partition, 4,
            num_edges=s.num_edges, num_vertices=s.num_vertices,
            imbalance_factor=1.05,
            load_caps=np.full(4, cap, dtype=np.int64),
        )
        a = default.ingest_pair(s.src, s.dst)
        b = explicit.ingest_pair(s.src, s.dst)
        assert np.array_equal(a, b)
        assert default.stats.balance_spill == explicit.stats.balance_spill

    def test_unbounded_caps_never_spill(self):
        g = web_crawl_graph(400, avg_out_degree=6, host_size=20, seed=3)
        s, clustering, cluster_partition = pipeline_inputs(g, k=4)
        from repro.core.transform import TransformState

        state = TransformState(
            clustering, cluster_partition, 4,
            num_edges=s.num_edges, num_vertices=s.num_vertices,
            load_caps=np.full(4, s.num_edges, dtype=np.int64),
        )
        state.ingest_pair(s.src, s.dst)
        assert state.stats.balance_spill == 0
        assert int(state.loads.sum()) == s.num_edges

    def test_asymmetric_caps_enforced(self):
        g = web_crawl_graph(400, avg_out_degree=6, host_size=20, seed=4)
        s, clustering, cluster_partition = pipeline_inputs(g, k=4)
        from repro.core.transform import TransformState

        caps = np.array([s.num_edges, s.num_edges, 10, 0], dtype=np.int64)
        state = TransformState(
            clustering, cluster_partition, 4,
            num_edges=s.num_edges, num_vertices=s.num_vertices,
            load_caps=caps,
        )
        parts = [state.ingest_pair(u, v) for u, v in s.batches(64)]
        out = np.concatenate(parts)
        loads = np.bincount(out, minlength=4)
        assert (loads <= caps).all()
        assert int(loads.sum()) == s.num_edges

    def test_validates_caps(self):
        s, clustering, cluster_partition = pipeline_inputs([(0, 1), (1, 2)], k=2)
        from repro.core.transform import TransformState

        with pytest.raises(ValueError, match="one entry per partition"):
            TransformState(
                clustering, cluster_partition, 2, num_edges=s.num_edges,
                num_vertices=s.num_vertices,
                load_caps=np.array([5], dtype=np.int64),
            )
        with pytest.raises(ValueError, match="cannot hold"):
            TransformState(
                clustering, cluster_partition, 2, num_edges=s.num_edges,
                num_vertices=s.num_vertices,
                load_caps=np.zeros(2, dtype=np.int64),
            )


class TestInitialLoads:
    """initial_loads seeding — the service's delta-application contract."""

    def _stream(self, seed=4):
        g = web_crawl_graph(400, avg_out_degree=6, host_size=20, seed=seed)
        return pipeline_inputs(g, k=4)

    def test_seeded_state_equals_prefix_then_rest(self):
        from repro.core.transform import TransformState

        s, clustering, cluster_partition = self._stream()
        k = 4
        vp = np.full(s.num_vertices, -1, dtype=np.int64)
        seen = clustering.active_mask()
        vp[seen] = cluster_partition[clustering.cluster_of[seen]]
        caps = np.full(k, s.num_edges, dtype=np.int64)
        whole = TransformState(
            clustering, None, k, num_edges=s.num_edges,
            num_vertices=s.num_vertices, vertex_partition=vp, load_caps=caps,
        )
        half = s.num_edges // 2
        first = whole.ingest_pair(s.src[:half], s.dst[:half])
        seeded = TransformState(
            clustering, None, k, num_edges=s.num_edges - half,
            num_vertices=s.num_vertices, vertex_partition=vp, load_caps=caps,
            initial_loads=np.bincount(first, minlength=k),
        )
        rest_whole = whole.ingest_pair(s.src[half:], s.dst[half:])
        rest_seeded = seeded.ingest_pair(s.src[half:], s.dst[half:])
        assert np.array_equal(rest_whole, rest_seeded)
        assert np.array_equal(whole.loads, seeded.loads)

    def test_initial_loads_validation(self):
        from repro.core.transform import TransformState

        s, clustering, cluster_partition = pipeline_inputs([(0, 1), (1, 2)], k=2)
        with pytest.raises(ValueError, match="one entry per partition"):
            TransformState(
                clustering, cluster_partition, 2, num_edges=s.num_edges,
                num_vertices=s.num_vertices,
                initial_loads=np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(ValueError, match="non-negative"):
            TransformState(
                clustering, cluster_partition, 2, num_edges=s.num_edges,
                num_vertices=s.num_vertices,
                initial_loads=np.array([-1, 0], dtype=np.int64),
            )
        # the uniform cap must hold the stream on top of the seed
        with pytest.raises(ValueError, match="already placed"):
            TransformState(
                clustering, cluster_partition, 2, num_edges=s.num_edges,
                num_vertices=s.num_vertices,
                initial_loads=np.array([100, 100], dtype=np.int64),
            )
        # explicit caps are validated against seed + stream too
        with pytest.raises(ValueError, match="cannot hold"):
            TransformState(
                clustering, cluster_partition, 2, num_edges=s.num_edges,
                num_vertices=s.num_vertices,
                load_caps=np.array([2, 1], dtype=np.int64),
                initial_loads=np.array([1, 1], dtype=np.int64),
            )

    def test_seeded_loads_count_toward_caps(self):
        from repro.core.transform import TransformState

        s, clustering, cluster_partition = self._stream(seed=6)
        k = 4
        seed_loads = np.array([7, 0, 3, 1], dtype=np.int64)
        caps = np.full(k, s.num_edges + 11, dtype=np.int64)
        state = TransformState(
            clustering, cluster_partition, k, num_edges=s.num_edges,
            num_vertices=s.num_vertices, load_caps=caps,
            initial_loads=seed_loads,
        )
        state.ingest_pair(s.src, s.dst)
        assert int(state.loads.sum()) == s.num_edges + int(seed_loads.sum())
        assert (state.loads <= caps).all()
