"""Bit-identity of the hdrf/greedy chunked cores against their references.

PR 3 replaced the numpy-per-edge chunk loops of the two sequential-state
baselines with lean scalar cores fed by vectorized exact precomputation
(HDRF's partial-degree/g terms).  Three implementations of each algorithm
must agree exactly, for every chunk geometry:

* ``partition_per_edge`` — the faithful per-edge streaming reference;
* ``partition_chunked`` with ``chunk_impl="fast"`` (default) — the lean
  core;
* ``partition_chunked`` with ``chunk_impl="reference"`` — the retained
  numpy-per-edge chunk loop (the correctness oracle the fast core is
  benchmarked against).

The hypothesis cases deliberately generate collision-heavy streams (a
handful of vertices, many repeated endpoints and self-loops per chunk):
they stress the within-chunk occurrence machinery behind HDRF's degree
precompute and the candidate-shortcut guard paths of both lean cores.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.partitioners.greedy import GreedyPartitioner
from repro.partitioners.hdrf import HDRFPartitioner

STATEFUL = {"hdrf": HDRFPartitioner, "greedy": GreedyPartitioner}


@pytest.fixture(scope="module")
def stream():
    graph = web_crawl_graph(
        400, avg_out_degree=8.0, host_size=25, intra_host_prob=0.85, seed=13
    )
    return EdgeStream.from_graph(graph, order="random", seed=5)


def _three_way(cls, stream, k, chunk_size, **kwargs):
    per_edge = cls(k, **kwargs).partition_per_edge(stream).edge_partition
    fast = (
        cls(k, chunk_impl="fast", **kwargs)
        .partition_chunked(stream, chunk_size=chunk_size)
        .edge_partition
    )
    reference = (
        cls(k, chunk_impl="reference", **kwargs)
        .partition_chunked(stream, chunk_size=chunk_size)
        .edge_partition
    )
    return per_edge, fast, reference


@pytest.mark.parametrize("name", sorted(STATEFUL))
@pytest.mark.parametrize("chunk_size", [1, 7, 1024, "all"])
def test_chunk_sizes_bit_identical(name, chunk_size, stream):
    if chunk_size == "all":
        chunk_size = stream.num_edges  # one chunk spanning the stream
    per_edge, fast, reference = _three_way(STATEFUL[name], stream, 8, chunk_size)
    assert np.array_equal(per_edge, fast)
    assert np.array_equal(per_edge, reference)


@pytest.mark.parametrize("name", sorted(STATEFUL))
@pytest.mark.parametrize("k", [1, 3, 64, 100])
def test_partition_counts_bit_identical(name, k, stream):
    # k = 64 exercises the top bit of a single mask word, k = 100 the
    # multiword reference tables against the unbounded-int fast core
    per_edge, fast, reference = _three_way(STATEFUL[name], stream, k, 509)
    assert np.array_equal(per_edge, fast)
    assert np.array_equal(per_edge, reference)


@pytest.mark.parametrize("lambda_bal", [0.0, 0.5, 3.0])
@pytest.mark.parametrize("epsilon", [0.25, 1.0])
def test_hdrf_parameter_space_bit_identical(lambda_bal, epsilon, stream):
    # lambda_bal = 0 is the degenerate all-scores-tie regime where the
    # reference argmax collapses to partition 0; large lambda_bal defeats
    # the members-only shortcut and forces the exact full-scan fallback
    per_edge, fast, reference = _three_way(
        HDRFPartitioner, stream, 6, 777, lambda_bal=lambda_bal, epsilon=epsilon
    )
    assert np.array_equal(per_edge, fast)
    assert np.array_equal(per_edge, reference)


@pytest.mark.parametrize("name", sorted(STATEFUL))
def test_replica_accounting_matches(name, stream):
    cls = STATEFUL[name]
    ref = cls(8)
    ref.partition_per_edge(stream)
    fast = cls(8, chunk_impl="fast")
    fast.partition_chunked(stream, chunk_size=311)
    loop = cls(8, chunk_impl="reference")
    loop.partition_chunked(stream, chunk_size=311)
    assert ref._replica_entries == fast._replica_entries == loop._replica_entries
    assert fast.state_memory_bytes(stream) == loop.state_memory_bytes(stream)


@pytest.mark.parametrize("name", sorted(STATEFUL))
def test_self_loops_and_duplicate_edges(name):
    stream = EdgeStream(
        [0, 0, 1, 1, 0, 2, 2, 1], [0, 1, 1, 0, 1, 2, 0, 1], num_vertices=3
    )
    per_edge, fast, reference = _three_way(STATEFUL[name], stream, 4, 3)
    assert np.array_equal(per_edge, fast)
    assert np.array_equal(per_edge, reference)


@pytest.mark.parametrize("name", sorted(STATEFUL))
def test_empty_and_single_edge(name):
    cls = STATEFUL[name]
    empty = EdgeStream([], [], num_vertices=0)
    assert cls(4).partition_chunked(empty).edge_partition.size == 0
    one = EdgeStream([0], [1], num_vertices=2)
    per_edge, fast, reference = _three_way(cls, one, 4, 1)
    assert np.array_equal(per_edge, fast) and np.array_equal(per_edge, reference)


@pytest.mark.parametrize("name", sorted(STATEFUL))
def test_invalid_chunk_impl_rejected(name):
    with pytest.raises(ValueError, match="chunk_impl"):
        STATEFUL[name](4, chunk_impl="vectorized")


@pytest.mark.parametrize("epsilon", [0.0, -1.0])
def test_hdrf_rejects_nonpositive_epsilon(epsilon):
    # eps = 0 divides by zero at the first edge (all loads equal), and the
    # numpy reference loop would silently return inf scores instead — the
    # constructor closes the gap for every path at once
    with pytest.raises(ValueError, match="epsilon"):
        HDRFPartitioner(4, epsilon=epsilon)


# --------------------------------------------------------------------- #
# collision-heavy property tests
# --------------------------------------------------------------------- #

collision_edges = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=120
)


@settings(max_examples=40, deadline=None)
@given(edges=collision_edges, chunk_size=st.integers(1, 130), k=st.integers(1, 9))
def test_greedy_collision_heavy_streams(edges, chunk_size, k):
    stream = EdgeStream.from_graph(DiGraph.from_edges(edges))
    per_edge, fast, reference = _three_way(GreedyPartitioner, stream, k, chunk_size)
    assert np.array_equal(per_edge, fast)
    assert np.array_equal(per_edge, reference)


@settings(max_examples=40, deadline=None)
@given(
    edges=collision_edges,
    chunk_size=st.integers(1, 130),
    k=st.integers(1, 9),
    lambda_bal=st.sampled_from([0.0, 0.7, 1.0, 2.5]),
)
def test_hdrf_collision_heavy_streams(edges, chunk_size, k, lambda_bal):
    stream = EdgeStream.from_graph(DiGraph.from_edges(edges))
    per_edge, fast, reference = _three_way(
        HDRFPartitioner, stream, k, chunk_size, lambda_bal=lambda_bal
    )
    assert np.array_equal(per_edge, fast)
    assert np.array_equal(per_edge, reference)
