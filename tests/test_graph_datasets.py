"""Tests for the dataset stand-in registry."""

import pytest

from repro.graph.datasets import DATASETS, WEB_DATASETS, load_dataset


class TestRegistry:
    def test_all_paper_corpora_present(self):
        assert set(DATASETS) == {"uk", "arabic", "webbase", "it", "twitter"}

    def test_web_datasets_tuple(self):
        assert set(WEB_DATASETS) <= set(DATASETS)
        assert all(DATASETS[a].kind == "web" for a in WEB_DATASETS)

    def test_twitter_is_social(self):
        assert DATASETS["twitter"].kind == "social"

    def test_paper_metadata_recorded(self):
        assert DATASETS["it"].paper_edges == "1.5B"
        assert DATASETS["uk"].paper_vertices == "19M"


class TestLoadDataset:
    def test_unknown_alias(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_alias_case_insensitive(self):
        assert load_dataset("UK", scale=0.02, seed=1) is load_dataset(
            "uk", scale=0.02, seed=1
        )

    def test_cache_returns_same_object(self):
        a = load_dataset("uk", scale=0.02, seed=3)
        b = load_dataset("uk", scale=0.02, seed=3)
        assert a is b

    def test_different_seed_different_graph(self):
        a = load_dataset("uk", scale=0.02, seed=1)
        b = load_dataset("uk", scale=0.02, seed=2)
        assert a != b

    def test_scale_changes_size(self):
        small = load_dataset("uk", scale=0.02, seed=1)
        large = load_dataset("uk", scale=0.08, seed=1)
        assert large.num_vertices > small.num_vertices

    def test_minimum_size_floor(self):
        g = load_dataset("uk", scale=1e-9, seed=1)
        assert g.num_vertices >= 128

    @pytest.mark.parametrize("alias", sorted(DATASETS))
    def test_every_dataset_builds(self, alias):
        g = load_dataset(alias, scale=0.02, seed=0)
        assert g.num_edges > 0
        assert g.num_vertices > 0

    def test_web_datasets_have_host_locality(self):
        g = load_dataset("arabic", scale=0.1, seed=0)
        # arabic stand-in uses 64-page hosts with very high intra probability
        same_host = (g.src // 64) == (g.dst // 64)
        assert same_host.mean() > 0.6

    def test_twitter_stream_is_shuffled(self):
        g = load_dataset("twitter", scale=0.05, seed=0)
        # BA generation emits src in increasing order; the social stand-in
        # shuffles the stream so arrival order carries no locality.
        assert not (g.src[:-1] <= g.src[1:]).all()
