#!/usr/bin/env python
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md, DESIGN.md, CHANGES.md, ROADMAP.md, and every ``*.md``
under ``docs/`` for inline markdown links ``[text](target)`` and checks
that each *relative* target resolves to an existing file or directory
(anchors and ``http(s)``/``mailto`` targets are skipped; an anchor-only
link like ``(#section)`` is accepted as long as the file itself exists).

Usage::

    python scripts/check_links.py            # exit 1 + report on dead links
    python scripts/check_links.py --verbose  # also list every checked link
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: files and globs to scan, relative to the repo root.
DOC_SOURCES = ["README.md", "DESIGN.md", "CHANGES.md", "ROADMAP.md", "docs/*.md"]

#: inline markdown link — non-greedy text, target up to the closing paren.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: schemes that are out of scope for a filesystem check.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_doc_files() -> list[Path]:
    """Resolve ``DOC_SOURCES`` to the markdown files that exist."""
    files: list[Path] = []
    for source in DOC_SOURCES:
        if "*" in source:
            files.extend(sorted(REPO.glob(source)))
        elif (REPO / source).is_file():
            files.append(REPO / source)
    return files


def check_file(path: Path, verbose: bool = False) -> list[str]:
    """Return one error string per dead relative link in ``path``."""
    errors = []
    try:
        label = path.relative_to(REPO)
    except ValueError:
        label = path
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            base = target.split("#", 1)[0]
            resolved = path if not base else (path.parent / base).resolve()
            if verbose:
                print(f"  {label}:{lineno}: {target}")
            if not resolved.exists():
                errors.append(
                    f"{label}:{lineno}: dead link ({target!r} -> {resolved})"
                )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true", help="list every link")
    args = parser.parse_args(argv)

    files = iter_doc_files()
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1

    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, verbose=args.verbose))

    print(f"check_links: scanned {len(files)} files")
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"check_links: {len(errors)} dead link(s)", file=sys.stderr)
        return 1
    print("check_links: all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
