#!/usr/bin/env python
"""Chaos smoke: injected faults must leave distributed CLUGP bit-identical.

CI runs this over a fixed seed matrix (``--seed N``); each seed picks a
different victim node per stage via the deterministic
:class:`~repro.reliability.faults.FaultInjector`, so the matrix together
exercises crash, hang, corrupt, and slow recovery on every stage of the
merged protocol.  The gate is exact: the chaotic edge partition must
equal the fault-free one bit for bit, on both executor backends.

Usage::

    python scripts/chaos_smoke.py --seed 1
"""

from __future__ import annotations

import argparse
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np

from repro.config import ClugpConfig, ReliabilityConfig
from repro.core.distributed import distributed_clugp
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream


def _run(stream, spec: str, backend: str, timeout=None):
    rel = ReliabilityConfig(
        inject_faults=spec, task_timeout=timeout,
        backoff_base=0.0, backoff_max=0.0,
    )
    cfg = ClugpConfig(num_partitions=4, reliability=rel)
    return distributed_clugp(
        stream, 4, num_nodes=3, config=cfg, seed=0, merge_mode="merged",
        backend=backend,
    )


def main(argv=None) -> int:
    """Run the seeded chaos scenarios; returns a shell exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection seed (victim selector)")
    args = parser.parse_args(argv)

    graph = web_crawl_graph(400, avg_out_degree=8.0, host_size=25, seed=3)
    stream = EdgeStream.from_graph(graph, order="natural")
    scenarios = [
        ("thread", f"crash,slow,corrupt,seed={args.seed},slow_seconds=0.05",
         None),
        ("process", f"crash,seed={args.seed}", None),
        ("process", f"hang,seed={args.seed},hang_seconds=30", 2.0),
    ]
    status = 0
    for backend, spec, timeout in scenarios:
        baseline = _run(stream, "", backend)
        chaotic = _run(stream, spec, backend, timeout)
        identical = np.array_equal(
            baseline.assignment.edge_partition,
            chaotic.assignment.edge_partition,
        )
        counters = chaotic.to_dict().get("reliability", {})
        print(
            f"chaos_smoke: {backend} {spec!r}: identical={identical} "
            f"(retries={counters.get('retries', 0)})"
        )
        if not identical:
            status = 1
    if status:
        print("FAIL: a chaotic run diverged from the fault-free partition")
    else:
        print(f"OK: seed {args.seed} chaos runs are bit-identical")
    return status


if __name__ == "__main__":
    sys.exit(main())
